"""The live serving runtime: asyncio request path + background re-solves.

Three tasks cooperate on one event loop:

- a **producer** feeds the request stream through admission control
  (optionally paced to real time at the stream's virtual arrival rate);
- a **consumer** answers each admitted request with a cache-hit/miss and
  a routing decision from the *committed* plan, via a pluggable
  :class:`~repro.serve.routing.RoutingStrategy`;
- a :class:`PlanManager` runs the paper's RHC re-solve chain
  (:func:`~repro.core.online.base.solve_window`) in a background worker
  thread and commits one ``(x_t, y_t)`` plan per slot.

**Plan-swap contract.** Plans change only at slot boundaries, atomically:
every decision inside one slot is made from one committed plan. Under
``queue`` admission the consumer *waits* at the boundary until the slot's
own plan is committed — decisions are then a pure function of the request
stream (``decision.plan_slot == decision.slot`` always, and two same-seed
runs produce byte-identical decision logs). Under ``shed`` admission the
boundary never blocks: the newest committed plan is installed, a stale
plan (solver behind) counts as a *dropped swap*, and overflowing requests
are shed by admission control — bounded latency, at the price of
determinism.

**Determinism discipline.** Everything that affects a decision — plans,
connection counts, releases, strategy state — advances on request
*virtual* arrival times, never the wall clock. Wall-clock time appears
only in latency metrics (decision / swap-wait histograms and the
:class:`ServeReport` percentiles), mirroring the events-vs-metrics split
of :mod:`repro.obs`.
"""

from __future__ import annotations

import asyncio
import heapq
import math
import time
from contextlib import nullcontext
from dataclasses import dataclass
from functools import partial
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from repro.config import (
    RuntimeConfig,
    resolved_obs_slo,
    resolved_serve_admission,
    resolved_serve_metrics_port,
    resolved_serve_queue_depth,
    resolved_serve_rps,
    resolved_serve_slot_seconds,
)
from repro.core.online.base import (
    OnlineSolveSettings,
    record_cache_stats,
    shift_mu,
    solve_window,
)
from repro.exceptions import ConfigurationError
from repro.faults.degrade import realize_slot, scenario_states
from repro.network.costs import CostBreakdown
from repro.obs.live import (
    MetricsServer,
    ServeTelemetry,
    SloTracker,
    parse_slo_specs,
)
from repro.obs.recorder import (
    Recorder,
    current_recorder,
    emit,
    inc,
    observe,
    observe_quantile,
    record_into,
    set_gauge,
)
from repro.obs.sketch import WindowedCounter
from repro.scenario import Scenario
from repro.serve.admission import AdmissionQueue
from repro.serve.replay import (
    Decision,
    Request,
    decision_digest,
    open_loop_requests,
)
from repro.serve.routing import (
    RouteContext,
    RoutingStrategy,
    ServerView,
    observe_server_gauges,
    strategy_by_name,
)
from repro.types import FloatArray

#: Solve function override for tests: ``(slot, x_prev) -> (x_slot, y_slot)``.
SolveFn = Callable[[int, FloatArray], tuple[FloatArray, FloatArray]]


@dataclass(frozen=True)
class CommittedPlan:
    """One slot's committed decisions: integral caches and fractional split."""

    slot: int
    x: FloatArray  # (N, K)
    y: FloatArray  # (M, K)


class PlanManager:
    """Background RHC chain: solve window ``[tau, tau+w)``, commit slot ``tau``.

    Mirrors :class:`repro.core.online.rhc.RHC` exactly — same warm-started
    multipliers, same cross-window candidate seeding, same
    :func:`~repro.faults.degrade.realize_slot` cache tracking under a
    fault schedule (the committed ``x`` is the cache *actually installed*,
    which is what the request path must serve from). Solves run in a
    worker thread via the event loop's default executor; commits happen on
    the loop thread, so waiters never race the solver.
    """

    def __init__(
        self,
        scenario: Scenario,
        *,
        window: int = 10,
        settings: OnlineSolveSettings | None = None,
        solve_fn: SolveFn | None = None,
    ) -> None:
        if window <= 0:
            raise ConfigurationError(f"window must be positive, got {window}")
        self.scenario = scenario
        self.window = int(window)
        self.settings = settings if settings is not None else OnlineSolveSettings()
        self.solve_fn = solve_fn
        self.plans: dict[int, CommittedPlan] = {}
        self.timings: dict[int, dict[str, float]] = {}
        self.latest = -1
        self.solves = 0
        self._waiters: dict[int, asyncio.Event] = {}
        self._failure: BaseException | None = None

    def ready(self, slot: int) -> bool:
        """Whether slot ``slot``'s own plan is already committed."""
        return slot in self.plans

    def latest_at(self, slot: int) -> CommittedPlan | None:
        """Newest committed plan usable at ``slot`` (never from the future)."""
        if self.latest < 0:
            return None
        return self.plans[min(slot, self.latest)]

    async def wait_for(self, slot: int) -> CommittedPlan:
        """Block until slot ``slot``'s plan is committed, then return it."""
        if slot not in self.plans:
            if self._failure is not None:
                raise self._failure
            event = self._waiters.setdefault(slot, asyncio.Event())
            await event.wait()
            if slot not in self.plans:
                assert self._failure is not None
                raise self._failure
        return self.plans[slot]

    def _commit(self, slot: int, x: FloatArray, y: FloatArray) -> None:
        plan = CommittedPlan(
            slot=slot,
            x=np.array(x, dtype=np.float64, copy=True),
            y=np.array(y, dtype=np.float64, copy=True),
        )
        self.plans[slot] = plan
        self.latest = slot
        self.solves += 1
        event = self._waiters.pop(slot, None)
        if event is not None:
            event.set()

    def _fail(self, exc: BaseException) -> None:
        self._failure = exc
        for event in self._waiters.values():
            event.set()

    async def run(self, horizon: int) -> None:
        """Solve and commit slots ``0..horizon-1``, then stop."""
        try:
            await self._run(horizon)
        except asyncio.CancelledError:
            raise
        except BaseException as exc:
            self._fail(exc)
            raise

    @staticmethod
    def _solve_recorded(fn: Callable[[], Any]) -> tuple[Any, Recorder]:
        # The worker thread gets its own recorder; the loop thread merges
        # it after the await — the obs merge discipline (one writer per
        # recorder), same as repro.perf.executor.map_recorded.
        recorder = Recorder()
        with record_into(recorder):
            return fn(), recorder

    async def _run(self, horizon: int) -> None:
        loop = asyncio.get_running_loop()
        scenario = self.scenario
        net = scenario.network
        x_prev = scenario.x_initial
        mu_warm: FloatArray | None = None
        x_warm: FloatArray | None = None
        faulted = scenario.faults is not None and not scenario.faults.is_empty
        states = scenario_states(scenario) if faulted else None
        incremental = self.settings.resolved_incremental()
        cache = self.settings.make_solve_cache()
        ambient = current_recorder()
        for tau in range(horizon):
            if self.solve_fn is not None:
                x_slot, y_slot = await loop.run_in_executor(
                    None, self.solve_fn, tau, x_prev
                )
                x_prev = np.where(
                    np.asarray(x_slot, dtype=np.float64) > 0.5, 1.0, 0.0
                )
                self._commit(tau, x_prev, np.asarray(y_slot, dtype=np.float64))
                continue
            result, recorder = await loop.run_in_executor(
                None,
                partial(
                    self._solve_recorded,
                    partial(
                        solve_window,
                        scenario,
                        decided_at=tau,
                        window_start=tau,
                        window=self.window,
                        x_prev=x_prev,
                        settings=self.settings,
                        mu_warm=mu_warm,
                        x_warm=x_warm,
                        solve_cache=cache,
                    ),
                ),
            )
            if ambient is not None:
                ambient.merge(recorder)
            # Stage timers of the solve that produced this plan; attached
            # to the plan_swap event when the consumer installs it.
            self.timings[tau] = {
                str(k): float(v) for k, v in result.timings.items()
            }
            x_slot = result.x[0]
            y_slot = result.y[0]
            if faulted:
                assert states is not None
                x_prev = realize_slot(
                    x_slot, x_prev, states.slot(tau), scenario.demand.rates[tau], net
                )
                x_warm = shift_mu(result.x, 1)
                # Serve from the caches actually installed, not the plan.
                x_slot = x_prev
            else:
                x_prev = x_slot
                if incremental:
                    x_warm = shift_mu(result.x, 1)
            mu_warm = shift_mu(result.mu, 1)
            self._commit(tau, x_slot, y_slot)
        record_cache_stats(cache, "serve")


@dataclass(frozen=True)
class ServeReport:
    """Outcome of one serve run (see :func:`serve_requests`).

    Latency fields are wall-clock percentiles (seconds); everything else
    is a deterministic function of the request stream under ``queue``
    admission. ``decisions`` carries the full ordered decision log and
    ``digest`` its sha256 fingerprint (:func:`~repro.serve.replay.decision_digest`).
    """

    strategy: str
    admission: str
    queue_depth: int
    slot_seconds: float
    paced: bool
    requests_total: int
    decided: int
    shed: int
    hits: int
    sbs_served: int
    bs_served: int
    spills: int
    slots_served: int
    plan_swaps: int
    plan_swaps_late: int
    plan_swaps_dropped: int
    solves: int
    offered_rps: float
    sustained_rps: float
    wall_seconds: float
    decision_mean_seconds: float
    decision_p50_seconds: float
    decision_p95_seconds: float
    decision_p99_seconds: float
    swap_wait_p99_seconds: float
    swap_wait_max_seconds: float
    slo_alerts: int
    sbs_utilization: tuple[float, ...]
    cost: CostBreakdown
    digest: str
    decisions: tuple[Decision, ...]

    @property
    def hit_rate(self) -> float:
        return self.hits / max(self.decided, 1)

    @property
    def offload_ratio(self) -> float:
        return self.sbs_served / max(self.decided, 1)

    @property
    def shed_ratio(self) -> float:
        """Fraction of offered requests dropped by admission control."""
        return self.shed / max(self.requests_total, 1)

    @property
    def swap_drop_ratio(self) -> float:
        """Fraction of plan swaps served from a stale (dropped) plan."""
        return self.plan_swaps_dropped / max(self.plan_swaps, 1)

    def to_dict(self) -> dict[str, Any]:
        """JSON-able summary (without the per-request decision log)."""
        return {
            "strategy": self.strategy,
            "admission": self.admission,
            "queue_depth": self.queue_depth,
            "slot_seconds": self.slot_seconds,
            "paced": self.paced,
            "requests_total": self.requests_total,
            "decided": self.decided,
            "shed": self.shed,
            "hits": self.hits,
            "hit_rate": self.hit_rate,
            "sbs_served": self.sbs_served,
            "bs_served": self.bs_served,
            "spills": self.spills,
            "offload_ratio": self.offload_ratio,
            "slots_served": self.slots_served,
            "plan_swaps": self.plan_swaps,
            "plan_swaps_late": self.plan_swaps_late,
            "plan_swaps_dropped": self.plan_swaps_dropped,
            "solves": self.solves,
            "offered_rps": self.offered_rps,
            "sustained_rps": self.sustained_rps,
            "wall_seconds": self.wall_seconds,
            "decision_mean_seconds": self.decision_mean_seconds,
            "decision_p50_seconds": self.decision_p50_seconds,
            "decision_p95_seconds": self.decision_p95_seconds,
            "decision_p99_seconds": self.decision_p99_seconds,
            "swap_wait_p99_seconds": self.swap_wait_p99_seconds,
            "swap_wait_max_seconds": self.swap_wait_max_seconds,
            "slo": {
                "decision_p50_us": self.decision_p50_seconds * 1e6,
                "decision_p95_us": self.decision_p95_seconds * 1e6,
                "decision_p99_us": self.decision_p99_seconds * 1e6,
                "shed_ratio": self.shed_ratio,
                "swap_drop_ratio": self.swap_drop_ratio,
                "alerts": self.slo_alerts,
                "sbs_utilization": list(self.sbs_utilization),
            },
            "cost": {
                "bs_cost": self.cost.bs_cost,
                "sbs_cost": self.cost.sbs_cost,
                "replacement": self.cost.replacement,
                "replacements": self.cost.replacements,
                "total": self.cost.total,
            },
            "decision_digest": self.digest,
        }


def _percentile(values: Sequence[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    idx = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return float(ordered[idx])


async def serve_requests(
    scenario: Scenario,
    requests: Iterable[Request],
    *,
    strategy: RoutingStrategy | str = "optimal-y",
    window: int = 10,
    settings: OnlineSolveSettings | None = None,
    admission: str | None = None,
    queue_depth: int | None = None,
    slot_seconds: float | None = None,
    pace: bool = False,
    config: RuntimeConfig | None = None,
    solve_fn: SolveFn | None = None,
    metrics_port: int | None = None,
    slo: str | None = None,
) -> ServeReport:
    """Serve a request stream against the scenario's live re-solve chain.

    ``pace=True`` replays the stream in real time (each request is
    released at its virtual arrival); the default replays as fast as the
    loop can drain, which is how the determinism tests run. ``solve_fn``
    substitutes the background solver (tests inject slow or trivial
    solvers to probe the plan-swap and admission machinery).

    ``metrics_port`` enables the live HTTP exporter (``0`` = ephemeral
    port) and ``slo`` declares burn-rate objectives
    (:func:`repro.obs.live.parse_slo_specs`); both default off and fall
    back to ``RuntimeConfig`` / environment. Live telemetry never touches
    decision state: the decision log of a seeded run is byte-identical
    with it on or off.
    """
    stream = tuple(requests)
    strat = strategy_by_name(strategy) if isinstance(strategy, str) else strategy
    strat.reset()
    admission_mode = resolved_serve_admission(config, admission)
    depth = resolved_serve_queue_depth(config, queue_depth)
    slot_s = resolved_serve_slot_seconds(config, slot_seconds)
    port = resolved_serve_metrics_port(config, metrics_port)
    slo_specs = parse_slo_specs(resolved_obs_slo(config, slo))

    net = scenario.network
    horizon = scenario.horizon
    if stream and max(r.slot for r in stream) >= horizon:
        raise ConfigurationError(
            "request stream references slots past the scenario horizon"
        )
    plan_horizon = (max(r.slot for r in stream) + 1) if stream else 0

    planner = PlanManager(
        scenario, window=window, settings=settings, solve_fn=solve_fn
    )
    queue = AdmissionQueue(admission_mode, depth)

    faulted = scenario.faults is not None and not scenario.faults.is_empty
    states = scenario_states(scenario)
    fault_mask = (
        scenario.faults.active_mask(horizon)
        if faulted
        else np.zeros(horizon, dtype=bool)
    )

    # Stylized service model (virtual time): an SBS with effective
    # bandwidth B serves at most cap = max(1, floor(B)) concurrent
    # requests, each holding a connection for cap * slot_seconds / B —
    # so it saturates exactly at B requests per slot, the paper's
    # bandwidth constraint. The BS is uncapacitated (hold = one slot).
    caps = np.maximum(1, states.bandwidths.astype(np.int64))
    caps = np.where(states.sbs_up, caps, 0)
    holds = caps * slot_s / np.maximum(states.bandwidths, 1.0)

    sbs_views = [ServerView(sid=f"sbs:{n}") for n in range(net.num_sbs)]
    bs_view = ServerView(sid="bs")
    sbs_release: list[list[float]] = [[] for _ in range(net.num_sbs)]
    bs_release: list[float] = []

    decisions: list[Decision] = []
    decision_seconds: list[float] = []
    swap_waits: list[float] = []
    bs_count = np.zeros((horizon, net.num_classes), dtype=np.int64)
    sbs_count = np.zeros((horizon, net.num_classes), dtype=np.int64)

    counters = {
        "decided": 0,
        "hits": 0,
        "sbs": 0,
        "bs": 0,
        "spills": 0,
        "swaps": 0,
        "late": 0,
        "dropped": 0,
    }
    slot_stats = {"requests": 0, "hits": 0}

    # --- live telemetry (explicitly outside the determinism contract:
    # wall-clock values, on-demand HTTP reads — but never decision state;
    # same-seed decision logs are byte-identical with it on or off).
    ambient = current_recorder()
    private_recorder: Recorder | None = None
    telemetry: ServeTelemetry | None = None
    if port is not None or slo_specs:
        if ambient is None:
            # No caller recorder: give the live surfaces their own, so
            # /metrics and SLO tracking work in untraced deployments.
            private_recorder = Recorder()
        tracker = (
            SloTracker(
                slo_specs,
                short_window=4 * slot_s,
                long_window=40 * slot_s,
            )
            if slo_specs
            else None
        )
        # Explicit None check: an empty Recorder is falsy (__len__ == 0).
        telemetry = ServeTelemetry(
            ambient if ambient is not None else private_recorder, tracker
        )
    live = telemetry is not None or ambient is not None
    # Sliding-window offered/shed rates keyed on *virtual* arrival time
    # (deterministic window contents for a seeded run).
    req_window = WindowedCounter(4 * slot_s) if live else None
    shed_window = WindowedCounter(4 * slot_s) if live else None

    start_wall = time.perf_counter()

    async def produce() -> None:
        for req in stream:
            if pace:
                delay = start_wall + req.arrival - time.perf_counter()
                if delay > 0:
                    await asyncio.sleep(delay)
            admitted = await queue.offer(req)
            if not admitted:
                decisions.append(
                    Decision(
                        seq=req.seq,
                        slot=req.slot,
                        mu_class=req.mu_class,
                        item=req.item,
                        route="shed",
                        hit=False,
                        spill=False,
                        plan_slot=-1,
                    )
                )
                emit("request_shed", slot=req.slot, request_seq=req.seq)
                inc("serve_shed")
                if req_window is not None and shed_window is not None:
                    req_window.add(req.arrival)
                    shed_window.add(req.arrival)
                if telemetry is not None:
                    telemetry.request(req.arrival, shed=True)
        await queue.close()

    def flush_slot(slot: int) -> None:
        if slot_stats["requests"]:
            emit(
                "slot_end",
                slot=slot,
                requests=slot_stats["requests"],
                hits=slot_stats["hits"],
            )
        slot_stats["requests"] = 0
        slot_stats["hits"] = 0

    def decide(req: Request, plan: CommittedPlan) -> None:
        t, m, k = req.slot, req.mu_class, req.item
        n = int(net.class_sbs[m])
        view = sbs_views[n]
        heap = sbs_release[n]
        while heap and heap[0] <= req.arrival:
            heapq.heappop(heap)
            view.connections -= 1
        while bs_release and bs_release[0] <= req.arrival:
            heapq.heappop(bs_release)
            bs_view.connections -= 1
        cap = int(caps[t, n])
        view.capacity = float(cap) if cap else 0.0
        up = bool(states.sbs_up[t, n])
        cached = bool(plan.x[n, k] > 0.5)
        saturated = view.connections >= cap
        eligible = up and cached and not saturated
        servers = [view, bs_view] if eligible else [bs_view]
        ctx = RouteContext(
            slot=t,
            mu_class=m,
            item=k,
            cached=cached,
            sbs_up=up,
            y_fraction=float(plan.y[m, k]),
        )
        choice = strat.select_server(servers, ctx)
        spill = False
        if choice is view and eligible:
            route = "sbs"
            heapq.heappush(heap, req.arrival + float(holds[t, n]))
            view.connections += 1
            sbs_count[t, m] += 1
            counters["sbs"] += 1
        else:
            route = "bs"
            heapq.heappush(bs_release, req.arrival + slot_s)
            bs_view.connections += 1
            bs_count[t, m] += 1
            counters["bs"] += 1
            if cached and up and saturated:
                spill = True
                view.failures += 1
                counters["spills"] += 1
                inc("serve_spills")
        counters["decided"] += 1
        counters["hits"] += int(cached)
        slot_stats["requests"] += 1
        slot_stats["hits"] += int(cached)
        decisions.append(
            Decision(
                seq=req.seq,
                slot=t,
                mu_class=m,
                item=k,
                route=route,
                hit=cached,
                spill=spill,
                plan_slot=plan.slot,
            )
        )

    async def consume() -> None:
        current: CommittedPlan | None = None
        slot_cursor = -1
        fault_active = False
        while True:
            req = await queue.get()
            if req is None:
                break
            if req.slot > slot_cursor:
                flush_slot(slot_cursor)
                target = req.slot
                for s in range(slot_cursor + 1, target + 1):
                    active = bool(fault_mask[s])
                    if active and not fault_active:
                        emit("fault_injected", slot=s)
                    elif fault_active and not active:
                        emit("fault_cleared", slot=s)
                    fault_active = active
                if admission_mode == "queue" or current is None:
                    ready = planner.ready(target)
                    wait0 = time.perf_counter()
                    plan = await planner.wait_for(
                        target if admission_mode == "queue" else 0
                    )
                    waited = time.perf_counter() - wait0
                    swap_waits.append(waited)
                    observe("serve_swap_wait_seconds", waited)
                    observe_quantile("serve_swap_wait_seconds", waited)
                    if not ready:
                        counters["late"] += 1
                        inc("serve_plan_swaps_late")
                    if admission_mode != "queue":
                        plan = planner.latest_at(target)
                        assert plan is not None
                else:
                    plan = planner.latest_at(target)
                    assert plan is not None
                    swap_waits.append(0.0)
                if plan.slot < target:
                    counters["dropped"] += 1
                    inc("serve_plan_swaps_dropped")
                if plan is not current:
                    counters["swaps"] += 1
                    inc("serve_plan_swaps")
                    swap_fields: dict[str, Any] = {
                        "plan_slot": plan.slot,
                        "strategy": strat.name,
                        "lag": target - plan.slot,
                    }
                    # Stage timers of the solve that produced this plan
                    # (absent under an injected solve_fn).
                    for stage, seconds in sorted(
                        planner.timings.get(plan.slot, {}).items()
                    ):
                        swap_fields[f"solve_{stage}_seconds"] = seconds
                    emit("plan_swap", slot=target, **swap_fields)
                current = plan
                slot_cursor = target
                if live:
                    now_v = target * slot_s
                    set_gauge("serve_queue_depth", queue.qsize())
                    set_gauge("serve_plan_lag", target - plan.slot)
                    observe_server_gauges(sbs_views, bs_view)
                    if req_window is not None and shed_window is not None:
                        set_gauge(
                            "serve_offered_rate_window",
                            req_window.rate(now_v),
                        )
                        set_gauge(
                            "serve_shed_rate_window", shed_window.rate(now_v)
                        )
                    if telemetry is not None:
                        telemetry.swap(now_v, dropped=plan.slot < target)
                        for alert in telemetry.evaluate(now_v):
                            emit(
                                "slo_alert",
                                slot=target,
                                slo=alert["name"],
                                threshold=alert["threshold"],
                                burn_short=alert["burn_short"],
                                burn_long=alert["burn_long"],
                                fault_active=fault_active,
                            )
                        telemetry.publish(
                            slot=target,
                            now=now_v,
                            queue_depth=queue.qsize(),
                            plan_lag=target - plan.slot,
                            sbs_utilization={
                                n: view.utilization
                                for n, view in enumerate(sbs_views)
                            },
                        )
            assert current is not None
            t0 = time.perf_counter()
            decide(req, current)
            elapsed = time.perf_counter() - t0
            decision_seconds.append(elapsed)
            observe("serve_decision_seconds", elapsed)
            observe_quantile("serve_decision_seconds", elapsed)
            inc("serve_requests")
            if req_window is not None:
                req_window.add(req.arrival)
            if telemetry is not None:
                telemetry.decision(req.arrival, elapsed)
                telemetry.request(req.arrival, shed=False)
        flush_slot(slot_cursor)

    if stream:
        server: MetricsServer | None = None
        scope = (
            record_into(private_recorder)
            if private_recorder is not None
            else nullcontext()
        )
        with scope:
            if telemetry is not None:
                telemetry.publish(slot=None, now=0.0)
                if port is not None:
                    server = MetricsServer(telemetry.snapshot, port=port)
                    server.start()
            try:
                plan_task = asyncio.ensure_future(planner.run(plan_horizon))
                prod_task = asyncio.ensure_future(produce())
                cons_task = asyncio.ensure_future(consume())
                try:
                    await asyncio.gather(prod_task, cons_task)
                except BaseException:
                    for task in (prod_task, cons_task, plan_task):
                        task.cancel()
                    await asyncio.gather(
                        prod_task, cons_task, plan_task, return_exceptions=True
                    )
                    raise
                wall = time.perf_counter() - start_wall
                await plan_task
                if telemetry is not None:
                    # Final snapshot so late scrapes see the whole run.
                    telemetry.publish(
                        slot=plan_horizon - 1,
                        now=stream[-1].arrival + slot_s,
                        queue_depth=queue.qsize(),
                        plan_lag=0,
                        sbs_utilization={
                            n: view.utilization
                            for n, view in enumerate(sbs_views)
                        },
                    )
            finally:
                if server is not None:
                    server.stop()
    else:
        wall = 0.0

    # Realized cost on the integer served counts (mirrors
    # repro.sim.discrete.replay_trace's accounting), so heuristic
    # strategies are comparable against optimal-y on one stream.
    totals = CostBreakdown.zero()
    prev = np.where(np.asarray(scenario.x_initial) > 0.5, 1.0, 0.0)
    for t in range(plan_horizon):
        plan = planner.plans[t]
        bs_load = np.zeros(net.num_sbs)
        sbs_load = np.zeros(net.num_sbs)
        np.add.at(bs_load, net.class_sbs, net.omega_bs * bs_count[t])
        np.add.at(sbs_load, net.class_sbs, net.omega_sbs * sbs_count[t])
        inserted = np.clip(plan.x - prev, 0.0, None).sum(axis=1)
        totals = totals + CostBreakdown(
            scenario.bs_cost.evaluate(bs_load),
            scenario.sbs_cost.evaluate(sbs_load),
            float(np.dot(net.replacement_costs, inserted)),
            int(np.count_nonzero((plan.x - prev) > 1e-6)),
        )
        prev = plan.x

    if len(stream) > 1:
        span = stream[-1].arrival - stream[0].arrival
        offered = (len(stream) - 1) / span if span > 0 else 0.0
    else:
        offered = 0.0

    # Per-SBS bandwidth utilization over the served horizon: requests
    # actually answered by SBS n vs its aggregate capacity sum_t B_{n,t}
    # over up-slots (the service model saturates at B requests/slot).
    served_by_sbs = np.zeros(net.num_sbs)
    if plan_horizon:
        np.add.at(
            served_by_sbs,
            net.class_sbs,
            sbs_count[:plan_horizon].sum(axis=0).astype(np.float64),
        )
        bw_capacity = (
            states.bandwidths[:plan_horizon] * states.sbs_up[:plan_horizon]
        ).sum(axis=0)
    else:
        bw_capacity = np.zeros(net.num_sbs)
    sbs_utilization = tuple(
        float(served_by_sbs[n] / bw_capacity[n]) if bw_capacity[n] > 0 else 0.0
        for n in range(net.num_sbs)
    )

    return ServeReport(
        strategy=strat.name,
        admission=admission_mode,
        queue_depth=depth,
        slot_seconds=slot_s,
        paced=pace,
        requests_total=len(stream),
        decided=counters["decided"],
        shed=queue.stats.shed,
        hits=counters["hits"],
        sbs_served=counters["sbs"],
        bs_served=counters["bs"],
        spills=counters["spills"],
        slots_served=len({d.slot for d in decisions if d.route != "shed"}),
        plan_swaps=counters["swaps"],
        plan_swaps_late=counters["late"],
        plan_swaps_dropped=counters["dropped"],
        solves=planner.solves,
        offered_rps=offered,
        sustained_rps=counters["decided"] / wall if wall > 0 else 0.0,
        wall_seconds=wall,
        decision_mean_seconds=(
            sum(decision_seconds) / len(decision_seconds)
            if decision_seconds
            else 0.0
        ),
        decision_p50_seconds=_percentile(decision_seconds, 0.50),
        decision_p95_seconds=_percentile(decision_seconds, 0.95),
        decision_p99_seconds=_percentile(decision_seconds, 0.99),
        swap_wait_p99_seconds=_percentile(swap_waits, 0.99),
        swap_wait_max_seconds=max(swap_waits, default=0.0),
        slo_alerts=telemetry.alerts_total if telemetry is not None else 0,
        sbs_utilization=sbs_utilization,
        cost=totals,
        digest=decision_digest(decisions),
        decisions=tuple(sorted(decisions, key=lambda d: d.seq)),
    )


def run_serve(
    scenario: Scenario,
    *,
    strategy: RoutingStrategy | str = "optimal-y",
    rps: float | None = None,
    slot_seconds: float | None = None,
    admission: str | None = None,
    queue_depth: int | None = None,
    window: int = 10,
    settings: OnlineSolveSettings | None = None,
    seed: int = 0,
    max_requests: int | None = None,
    pace: bool = False,
    config: RuntimeConfig | None = None,
    requests: Iterable[Request] | None = None,
    solve_fn: SolveFn | None = None,
    metrics_port: int | None = None,
    slo: str | None = None,
) -> ServeReport:
    """Synchronous facade: build the stream (unless given) and serve it.

    The open-loop stream is deterministic in ``(scenario, rps,
    slot_seconds, seed)``; see :func:`serve_requests` for the runtime
    semantics and :class:`ServeReport` for what comes back.
    """
    slot_s = resolved_serve_slot_seconds(config, slot_seconds)
    if requests is None:
        rate = resolved_serve_rps(config, rps)
        requests = open_loop_requests(
            scenario,
            rps=rate,
            slot_seconds=slot_s,
            seed=seed,
            max_requests=max_requests,
        )
    return asyncio.run(
        serve_requests(
            scenario,
            requests,
            strategy=strategy,
            window=window,
            settings=settings,
            admission=admission,
            queue_depth=queue_depth,
            slot_seconds=slot_s,
            pace=pace,
            config=config,
            solve_fn=solve_fn,
            metrics_port=metrics_port,
            slo=slo,
        )
    )


def render_serve_report(report: ServeReport) -> str:
    """Human-readable summary of one serve run."""
    lines = [
        f"serve: strategy={report.strategy} admission={report.admission} "
        f"slot={report.slot_seconds:g}s queue={report.queue_depth}"
        f"{' paced' if report.paced else ''}",
        f"  requests   {report.requests_total} total, {report.decided} decided, "
        f"{report.shed} shed",
        f"  throughput {report.sustained_rps:.1f} rps sustained "
        f"({report.offered_rps:.1f} offered) over {report.wall_seconds:.2f}s",
        f"  cache      {report.hit_rate:.1%} hit rate, "
        f"{report.offload_ratio:.1%} offloaded to SBS, {report.spills} spills",
        f"  plans      {report.plan_swaps} swaps "
        f"({report.plan_swaps_late} late, {report.plan_swaps_dropped} dropped), "
        f"{report.solves} solves over {report.slots_served} slots",
        f"  latency    decision p50 {report.decision_p50_seconds * 1e6:.0f}us "
        f"p95 {report.decision_p95_seconds * 1e6:.0f}us "
        f"p99 {report.decision_p99_seconds * 1e6:.0f}us; "
        f"swap wait p99 {report.swap_wait_p99_seconds * 1e3:.1f}ms "
        f"max {report.swap_wait_max_seconds * 1e3:.1f}ms",
        f"  slo        shed {report.shed_ratio:.2%}, "
        f"swap drops {report.swap_drop_ratio:.2%}, "
        f"{report.slo_alerts} alerts; sbs util "
        + "/".join(f"{u:.0%}" for u in report.sbs_utilization),
        f"  cost       total {report.cost.total:.2f} "
        f"(bs {report.cost.bs_cost:.2f}, sbs {report.cost.sbs_cost:.2f}, "
        f"repl {report.cost.replacement:.2f})",
        f"  digest     {report.digest[:16]}",
    ]
    return "\n".join(lines)

"""`repro.serve` — the live serving runtime.

Turns the batch simulator into a production-shaped system: an asyncio
event loop answers a streamed request trace with cache-hit/miss and
routing decisions from the currently committed plan ``(x, y)`` while the
paper's controller re-solves concurrently in the background, swapping
plans atomically at slot boundaries. See :mod:`repro.serve.loop` for the
plan-swap contract, :mod:`repro.serve.routing` for the pluggable
routing-strategy API, :mod:`repro.serve.admission` for backpressure /
shedding, and :mod:`repro.serve.replay` for deterministic request streams
and decision logs.
"""

from repro.serve.admission import AdmissionQueue, AdmissionStats
from repro.serve.loop import (
    CommittedPlan,
    PlanManager,
    ServeReport,
    render_serve_report,
    run_serve,
    serve_requests,
)
from repro.serve.replay import (
    Decision,
    Request,
    decision_digest,
    decision_lines,
    open_loop_requests,
    read_decision_log,
    requests_from_trace,
    validate_stream,
    write_decision_log,
)
from repro.serve.routing import (
    STRATEGIES,
    HealthScoreStrategy,
    LeastConnectionsStrategy,
    OptimalYStrategy,
    RoundRobinStrategy,
    RouteContext,
    RoutingStrategy,
    ServerView,
    strategy_by_name,
)

__all__ = [
    "AdmissionQueue",
    "AdmissionStats",
    "CommittedPlan",
    "Decision",
    "HealthScoreStrategy",
    "LeastConnectionsStrategy",
    "OptimalYStrategy",
    "PlanManager",
    "Request",
    "RoundRobinStrategy",
    "RouteContext",
    "RoutingStrategy",
    "STRATEGIES",
    "ServeReport",
    "ServerView",
    "decision_digest",
    "decision_lines",
    "open_loop_requests",
    "read_decision_log",
    "render_serve_report",
    "requests_from_trace",
    "run_serve",
    "serve_requests",
    "strategy_by_name",
    "validate_stream",
    "write_decision_log",
]

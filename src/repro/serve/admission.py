"""Admission control between the request producer and the serve loop.

A bounded :class:`asyncio.Queue` sits between the arrival stream and the
decision loop. When the loop falls behind (typically because a slot
boundary is waiting on the background solver), the queue fills and the
admission policy decides what happens next:

- ``"queue"`` — backpressure: the producer blocks until space frees up.
  No request is ever dropped, and the decision log stays a deterministic
  function of the stream (the acceptance mode for determinism tests).
- ``"shed"`` — load shedding: the overflow request is rejected
  immediately. The producer records a ``shed`` decision and a
  ``request_shed`` obs event and moves on — the latency-bounded mode,
  at the price of losing requests (and with them log determinism, since
  *which* requests overflow depends on real solver timing).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

from repro.config import ADMISSION_POLICIES
from repro.exceptions import ConfigurationError
from repro.serve.replay import Request

#: Queue sentinel marking the end of the request stream.
_CLOSED = object()


@dataclass
class AdmissionStats:
    """Producer-side admission counters."""

    admitted: int = 0
    shed: int = 0
    max_depth: int = 0


class AdmissionQueue:
    """Bounded request queue applying one of :data:`ADMISSION_POLICIES`."""

    def __init__(self, mode: str, depth: int) -> None:
        if mode not in ADMISSION_POLICIES:
            raise ConfigurationError(
                f"admission mode must be one of {ADMISSION_POLICIES}, got {mode!r}"
            )
        if depth < 1:
            raise ConfigurationError(f"queue depth must be >= 1, got {depth}")
        self.mode = mode
        self.depth = depth
        self.stats = AdmissionStats()
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=depth)

    async def offer(self, request: Request) -> bool:
        """Submit a request; returns ``False`` when it was shed."""
        if self.mode == "queue":
            await self._queue.put(request)
        else:
            try:
                self._queue.put_nowait(request)
            except asyncio.QueueFull:
                self.stats.shed += 1
                return False
        self.stats.admitted += 1
        self.stats.max_depth = max(self.stats.max_depth, self._queue.qsize())
        return True

    def qsize(self) -> int:
        """Current queue occupancy — the live queue-depth gauge feed."""
        return self._queue.qsize()

    async def close(self) -> None:
        """Signal end-of-stream; always queued (never shed)."""
        await self._queue.put(_CLOSED)

    async def get(self) -> Request | None:
        """Next admitted request, or ``None`` once the stream is closed."""
        item = await self._queue.get()
        if item is _CLOSED:
            return None
        return item

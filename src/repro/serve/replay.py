"""Request streams and decision logs for the serve runtime.

The serve loop consumes a stream of individual requests — the
request-level view of the fluid demand the optimization model works with.
Two generators produce such streams deterministically:

- :func:`open_loop_requests` — synthetic open-loop arrivals at a fixed
  RPS, with ``(class, item)`` drawn per-slot from the scenario's demand
  distribution under a seeded generator;
- :func:`requests_from_trace` — expansion of an integer
  :class:`~repro.workload.trace.RequestTrace` into per-request arrivals
  spread evenly across each slot.

Arrivals are **virtual** timestamps (seconds since serve start). All
decision-affecting state in the serve loop is a function of the request
sequence and these virtual clocks — never of the wall clock — which is
what makes two same-seed runs produce byte-identical decision logs
(:func:`decision_digest`) even though the loop itself runs on asyncio.

A :class:`Decision` is the serve-side analogue of a trace event: the
canonical JSON line for one answered (or shed) request. The decision log
is sorted by request sequence number before serialization, so the bytes do
not depend on producer/consumer interleaving.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.scenario import Scenario
from repro.workload.trace import RequestTrace

#: Routes a decision can record: served by the class's SBS, served by the
#: macro BS, or dropped by admission control before any server saw it.
ROUTES = ("sbs", "bs", "shed")


@dataclass(frozen=True)
class Request:
    """One request in a serve stream.

    Attributes
    ----------
    seq:
        0-based position in the stream (unique, monotone).
    slot:
        The model timeslot the request falls into.
    mu_class:
        Requesting MU class ``m``.
    item:
        Requested content ``k``.
    arrival:
        Virtual arrival time in seconds since serve start
        (``slot * slot_seconds <= arrival < (slot + 1) * slot_seconds``).
    """

    seq: int
    slot: int
    mu_class: int
    item: int
    arrival: float


@dataclass(frozen=True)
class Decision:
    """The serve loop's answer to one request.

    ``plan_slot`` is the slot of the committed plan the decision was made
    from: equal to ``slot`` under ``queue`` admission (the atomicity
    contract), possibly smaller under ``shed`` admission when the solver
    fell behind, and ``-1`` for shed requests (no plan consulted).
    ``hit`` records whether the content was cached at the class's SBS at
    decision time; ``spill`` whether a cache-hit request was pushed to the
    BS because the SBS was at its concurrency cap.
    """

    seq: int
    slot: int
    mu_class: int
    item: int
    route: str
    hit: bool
    spill: bool
    plan_slot: int

    def to_json(self) -> str:
        """Canonical single-line JSON (sorted keys, no whitespace)."""
        return json.dumps(
            {
                "seq": self.seq,
                "slot": self.slot,
                "mu_class": self.mu_class,
                "item": self.item,
                "route": self.route,
                "hit": self.hit,
                "spill": self.spill,
                "plan_slot": self.plan_slot,
            },
            sort_keys=True,
            separators=(",", ":"),
            allow_nan=False,
        )


def _slot_choices(
    rng: np.random.Generator, rates_slot: np.ndarray, count: int
) -> tuple[np.ndarray, np.ndarray]:
    """Draw ``count`` (class, item) pairs from one slot's demand distribution."""
    M, K = rates_slot.shape
    total = float(rates_slot.sum())
    if total <= 0.0:
        flat = rng.integers(0, M * K, size=count)
    else:
        flat = rng.choice(M * K, size=count, p=(rates_slot / total).reshape(-1))
    return flat // K, flat % K


def open_loop_requests(
    scenario: Scenario,
    *,
    rps: float,
    slot_seconds: float,
    seed: int = 0,
    max_requests: int | None = None,
) -> tuple[Request, ...]:
    """Synthetic open-loop arrivals at a fixed rate, one per ``1/rps`` seconds.

    Request ``i`` arrives at virtual time ``i / rps``; its ``(class, item)``
    is drawn from the scenario's demand distribution of the slot the
    arrival falls into (so surges injected by :func:`repro.api.inject_faults`
    shape the stream). The stream ends at the scenario horizon or after
    ``max_requests``, whichever comes first. Fully deterministic in
    ``(scenario, rps, slot_seconds, seed)``.
    """
    if rps <= 0:
        raise ConfigurationError(f"rps must be > 0, got {rps}")
    if slot_seconds <= 0:
        raise ConfigurationError(f"slot_seconds must be > 0, got {slot_seconds}")
    horizon = scenario.horizon
    total = int(math.ceil(horizon * slot_seconds * rps - 1e-9))
    if max_requests is not None:
        total = min(total, int(max_requests))
    rng = np.random.default_rng(seed)
    rates = scenario.demand.rates
    arrivals = np.arange(total, dtype=np.float64) / rps
    slots = np.minimum((arrivals / slot_seconds).astype(np.int64), horizon - 1)
    requests: list[Request] = []
    start = 0
    while start < total:
        slot = int(slots[start])
        stop = start
        while stop < total and slots[stop] == slot:
            stop += 1
        classes, items = _slot_choices(rng, rates[slot], stop - start)
        for offset, (m, k) in enumerate(zip(classes, items)):
            seq = start + offset
            requests.append(
                Request(
                    seq=seq,
                    slot=slot,
                    mu_class=int(m),
                    item=int(k),
                    arrival=float(arrivals[seq]),
                )
            )
        start = stop
    return tuple(requests)


def requests_from_trace(
    trace: RequestTrace,
    *,
    slot_seconds: float,
    seed: int | None = None,
) -> tuple[Request, ...]:
    """Expand an integer request trace into a serve stream.

    Each slot's requests arrive evenly spaced inside the slot. Without a
    seed the per-slot order is ``(class, item)``-sorted; with one it is a
    seeded permutation (still deterministic).
    """
    if slot_seconds <= 0:
        raise ConfigurationError(f"slot_seconds must be > 0, got {slot_seconds}")
    rng = np.random.default_rng(seed) if seed is not None else None
    requests: list[Request] = []
    seq = 0
    for t in range(trace.horizon):
        counts = trace.counts[t]
        ms, ks = np.nonzero(counts)
        pairs = np.repeat(
            np.stack([ms, ks], axis=1), counts[ms, ks].astype(np.int64), axis=0
        )
        if rng is not None and len(pairs):
            pairs = pairs[rng.permutation(len(pairs))]
        n_t = len(pairs)
        for i, (m, k) in enumerate(pairs):
            requests.append(
                Request(
                    seq=seq,
                    slot=t,
                    mu_class=int(m),
                    item=int(k),
                    arrival=(t + (i + 0.5) / max(n_t, 1)) * slot_seconds,
                )
            )
            seq += 1
    return tuple(requests)


def decision_lines(decisions: Iterable[Decision]) -> list[str]:
    """Canonical JSONL lines, sorted by request sequence number."""
    ordered = sorted(decisions, key=lambda d: d.seq)
    return [d.to_json() for d in ordered]


def decision_digest(decisions: Iterable[Decision]) -> str:
    """sha256 over the canonical decision log — the determinism fingerprint."""
    digest = hashlib.sha256()
    for line in decision_lines(decisions):
        digest.update(line.encode("ascii"))
        digest.update(b"\n")
    return digest.hexdigest()


def write_decision_log(path: str | Path, decisions: Iterable[Decision]) -> int:
    """Write the canonical decision log as JSONL; returns the line count."""
    lines = decision_lines(decisions)
    Path(path).write_text("".join(line + "\n" for line in lines))
    return len(lines)


def read_decision_log(path: str | Path) -> tuple[Decision, ...]:
    """Read a decision log written by :func:`write_decision_log`."""
    decisions = []
    for line in Path(path).read_text().splitlines():
        if not line.strip():
            continue
        payload = json.loads(line)
        route = payload.get("route")
        if route not in ROUTES:
            raise ConfigurationError(f"unknown decision route {route!r}")
        decisions.append(
            Decision(
                seq=int(payload["seq"]),
                slot=int(payload["slot"]),
                mu_class=int(payload["mu_class"]),
                item=int(payload["item"]),
                route=route,
                hit=bool(payload["hit"]),
                spill=bool(payload["spill"]),
                plan_slot=int(payload["plan_slot"]),
            )
        )
    return tuple(decisions)


def validate_stream(requests: Sequence[Request]) -> None:
    """Validate a stream: strictly increasing seq and non-decreasing arrivals."""
    for i in range(1, len(requests)):
        if requests[i].seq <= requests[i - 1].seq:
            raise ConfigurationError("request seq must be strictly increasing")
        if requests[i].arrival < requests[i - 1].arrival:
            raise ConfigurationError("request arrivals must be non-decreasing")

"""Mobile-user classes.

The paper aggregates MUs into classes ``m_n`` attached to a single SBS
``n``; a class is described by two weighted transmission parameters:

- ``omega_bs`` (the paper's ``omega_{m_n}``): the per-unit-load weight of
  serving this class from the macro BS, capturing distance/channel quality
  to the BS (Section II-B). Drawn ``U[0, 1]`` in the paper's simulations,
  interpreted as distance to the BS normalized by the cell radius.
- ``omega_sbs`` (the paper's ``omega-hat_{m_n}``): the analogous weight for
  serving from the local SBS. Much smaller than ``omega_bs`` since SBSs sit
  at the edge; the paper's simulations use 0.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class MUClass:
    """A class of mobile users attached to one SBS.

    Parameters
    ----------
    class_id:
        Global index of this class within the network (``0..M-1``).
    sbs_id:
        Index of the SBS serving this class.
    omega_bs:
        Weighted transmission parameter to the BS (``omega_{m_n} >= 0``).
    omega_sbs:
        Weighted transmission parameter to the SBS (``omega-hat_{m_n} >= 0``).
    """

    class_id: int
    sbs_id: int
    omega_bs: float
    omega_sbs: float = 0.0

    def __post_init__(self) -> None:
        if self.class_id < 0:
            raise ConfigurationError(f"class_id must be >= 0, got {self.class_id}")
        if self.sbs_id < 0:
            raise ConfigurationError(f"sbs_id must be >= 0, got {self.sbs_id}")
        if self.omega_bs < 0:
            raise ConfigurationError(f"omega_bs must be >= 0, got {self.omega_bs}")
        if self.omega_sbs < 0:
            raise ConfigurationError(f"omega_sbs must be >= 0, got {self.omega_sbs}")

    @property
    def name(self) -> str:
        return f"MU-{self.class_id}@SBS-{self.sbs_id}"

"""Whole-network container with vectorized parameter views.

:class:`Network` validates the wiring between SBSs and MU classes and
exposes numpy views of the scalar parameters so that the optimization code
can stay fully vectorized. Class indices are global (``0..M-1``); the
mapping from classes to their SBS is available both as an index vector and
as per-SBS index lists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.network.content import ContentCatalog
from repro.network.stations import BaseStation, SmallBaseStation
from repro.network.users import MUClass
from repro.types import FloatArray, IntArray


@dataclass(frozen=True)
class Network:
    """One BS, ``N`` SBSs, and ``M`` MU classes over a catalog of ``K`` items.

    Parameters
    ----------
    catalog:
        The content catalog offered by the BS.
    sbss:
        SBSs, whose ``sbs_id`` must equal their position (``0..N-1``).
    mu_classes:
        MU classes, whose ``class_id`` must equal their position
        (``0..M-1``), each attached to an existing SBS.
    bs:
        The macro base station (uncapacitated).
    """

    catalog: ContentCatalog
    sbss: tuple[SmallBaseStation, ...]
    mu_classes: tuple[MUClass, ...]
    bs: BaseStation = field(default_factory=BaseStation)

    def __post_init__(self) -> None:
        if not self.sbss:
            raise ConfigurationError("network needs at least one SBS")
        if not self.mu_classes:
            raise ConfigurationError("network needs at least one MU class")
        for pos, sbs in enumerate(self.sbss):
            if sbs.sbs_id != pos:
                raise ConfigurationError(
                    f"SBS at position {pos} has sbs_id {sbs.sbs_id}; ids must be 0..N-1 in order"
                )
        for pos, mu in enumerate(self.mu_classes):
            if mu.class_id != pos:
                raise ConfigurationError(
                    f"MU class at position {pos} has class_id {mu.class_id}; "
                    "ids must be 0..M-1 in order"
                )
            if mu.sbs_id >= len(self.sbss):
                raise ConfigurationError(
                    f"MU class {mu.class_id} references SBS {mu.sbs_id}, "
                    f"but only {len(self.sbss)} SBSs exist"
                )
        for sbs in self.sbss:
            if sbs.cache_size > self.catalog.num_items:
                raise ConfigurationError(
                    f"{sbs.name} cache_size {sbs.cache_size} exceeds catalog size "
                    f"{self.catalog.num_items}"
                )

    # ------------------------------------------------------------------ sizes

    @property
    def num_sbs(self) -> int:
        """``N`` — number of small base stations."""
        return len(self.sbss)

    @property
    def num_classes(self) -> int:
        """``M`` — total number of MU classes across all SBSs."""
        return len(self.mu_classes)

    @property
    def num_items(self) -> int:
        """``K`` — catalog size."""
        return self.catalog.num_items

    # ------------------------------------------------------- vectorized views

    @cached_property
    def omega_bs(self) -> FloatArray:
        """Per-class BS transmission weights, shape ``(M,)``."""
        return np.array([mu.omega_bs for mu in self.mu_classes], dtype=np.float64)

    @cached_property
    def omega_sbs(self) -> FloatArray:
        """Per-class SBS transmission weights, shape ``(M,)``."""
        return np.array([mu.omega_sbs for mu in self.mu_classes], dtype=np.float64)

    @cached_property
    def class_sbs(self) -> IntArray:
        """For each MU class, the index of its SBS; shape ``(M,)``."""
        return np.array([mu.sbs_id for mu in self.mu_classes], dtype=np.int64)

    @cached_property
    def cache_sizes(self) -> IntArray:
        """Per-SBS cache capacities ``C_n``, shape ``(N,)``."""
        return np.array([sbs.cache_size for sbs in self.sbss], dtype=np.int64)

    @cached_property
    def bandwidths(self) -> FloatArray:
        """Per-SBS bandwidth capacities ``B_n``, shape ``(N,)``."""
        return np.array([sbs.bandwidth for sbs in self.sbss], dtype=np.float64)

    @cached_property
    def replacement_costs(self) -> FloatArray:
        """Per-SBS replacement costs ``beta_n``, shape ``(N,)``."""
        return np.array([sbs.replacement_cost for sbs in self.sbss], dtype=np.float64)

    @cached_property
    def classes_of_sbs(self) -> tuple[IntArray, ...]:
        """For each SBS ``n``, the (sorted) global indices of its MU classes."""
        buckets: list[list[int]] = [[] for _ in range(self.num_sbs)]
        for mu in self.mu_classes:
            buckets[mu.sbs_id].append(mu.class_id)
        return tuple(np.array(b, dtype=np.int64) for b in buckets)

    # ----------------------------------------------------------- construction

    def classes_served_by(self, sbs_id: int) -> tuple[MUClass, ...]:
        """The MU classes attached to SBS ``sbs_id``."""
        if not 0 <= sbs_id < self.num_sbs:
            raise ConfigurationError(f"no SBS with id {sbs_id}")
        return tuple(self.mu_classes[i] for i in self.classes_of_sbs[sbs_id])

    def with_bandwidths(self, bandwidths: Sequence[float] | float) -> "Network":
        """Return a copy of this network with the SBS bandwidths replaced.

        Used by parameter sweeps (Fig. 4). A scalar applies to every SBS.
        """
        values = self._broadcast_per_sbs(bandwidths, "bandwidths")
        sbss = tuple(
            SmallBaseStation(s.sbs_id, s.cache_size, float(b), s.replacement_cost)
            for s, b in zip(self.sbss, values)
        )
        return Network(self.catalog, sbss, self.mu_classes, self.bs)

    def with_replacement_costs(self, betas: Sequence[float] | float) -> "Network":
        """Return a copy of this network with the per-SBS ``beta_n`` replaced.

        Used by parameter sweeps (Fig. 2). A scalar applies to every SBS.
        """
        values = self._broadcast_per_sbs(betas, "replacement costs")
        sbss = tuple(
            SmallBaseStation(s.sbs_id, s.cache_size, s.bandwidth, float(b))
            for s, b in zip(self.sbss, values)
        )
        return Network(self.catalog, sbss, self.mu_classes, self.bs)

    def with_cache_sizes(self, sizes: Sequence[int] | int) -> "Network":
        """Return a copy of this network with the per-SBS cache sizes replaced."""
        values = self._broadcast_per_sbs(sizes, "cache sizes")
        sbss = tuple(
            SmallBaseStation(s.sbs_id, int(c), s.bandwidth, s.replacement_cost)
            for s, c in zip(self.sbss, values)
        )
        return Network(self.catalog, sbss, self.mu_classes, self.bs)

    def _broadcast_per_sbs(
        self, values: Sequence[float] | float, what: str
    ) -> list[float]:
        if np.isscalar(values):
            return [float(values)] * self.num_sbs  # type: ignore[arg-type]
        out = [float(v) for v in values]  # type: ignore[union-attr]
        if len(out) != self.num_sbs:
            raise ConfigurationError(
                f"got {len(out)} {what} for {self.num_sbs} SBSs"
            )
        return out


def single_cell_network(
    *,
    num_items: int,
    cache_size: int,
    bandwidth: float,
    replacement_cost: float,
    omega_bs: Iterable[float],
    omega_sbs: Iterable[float] | float = 0.0,
) -> Network:
    """Build the paper's single-SBS evaluation network (Section V-B).

    Parameters mirror :class:`SmallBaseStation`; ``omega_bs`` supplies one BS
    weight per MU class and ``omega_sbs`` either one SBS weight per class or
    a scalar applied to all classes (the paper uses 0).
    """
    omegas = [float(w) for w in omega_bs]
    if np.isscalar(omega_sbs):
        omega_hats = [float(omega_sbs)] * len(omegas)  # type: ignore[arg-type]
    else:
        omega_hats = [float(w) for w in omega_sbs]  # type: ignore[union-attr]
    if len(omega_hats) != len(omegas):
        raise ConfigurationError(
            f"got {len(omegas)} BS weights but {len(omega_hats)} SBS weights"
        )
    catalog = ContentCatalog(num_items)
    sbs = SmallBaseStation(0, cache_size, bandwidth, replacement_cost)
    classes = tuple(
        MUClass(i, 0, w, wh) for i, (w, wh) in enumerate(zip(omegas, omega_hats))
    )
    return Network(catalog, (sbs,), classes)

"""Content catalog offered by the base station.

The paper assumes the BS offers ``K`` content items of identical size ``o``
(Section II-A), normalized to ``o = 1``. The catalog is therefore fully
described by its cardinality; we keep the item size explicit so that the
normalization assumption is visible at the API surface and so alternative
scenarios can scale it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class ContentCatalog:
    """The set of content items ``K = {0, 1, ..., num_items - 1}``.

    Parameters
    ----------
    num_items:
        Catalog size ``K``. Must be a positive integer.
    item_size:
        Uniform item size ``o``; the paper normalizes ``o = 1``.
    names:
        Optional human-readable names, one per item, used only for reports.
    """

    num_items: int
    item_size: float = 1.0
    names: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.num_items <= 0:
            raise ConfigurationError(f"catalog must be non-empty, got {self.num_items}")
        if self.item_size <= 0:
            raise ConfigurationError(f"item size must be positive, got {self.item_size}")
        if self.names and len(self.names) != self.num_items:
            raise ConfigurationError(
                f"got {len(self.names)} names for {self.num_items} items"
            )

    def __len__(self) -> int:
        return self.num_items

    def __contains__(self, item: int) -> bool:
        return 0 <= item < self.num_items

    def name_of(self, item: int) -> str:
        """Return the display name of ``item`` (``content-<k>`` by default)."""
        if item not in self:
            raise ConfigurationError(f"item {item} outside catalog of size {self.num_items}")
        if self.names:
            return self.names[item]
        return f"content-{item}"

    @property
    def items(self) -> range:
        """The item index range ``0..K-1``."""
        return range(self.num_items)

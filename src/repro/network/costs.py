"""Cost model of Section II-B: operating costs and cache replacement cost.

The per-slot system cost has three components (paper Eqs. 5, 6, 8):

- BS operating cost ``f_t(Y) = sum_n ( sum_{m in n} omega_m *
  sum_k (1 - y[m,k]) * lam[m,k] )**2`` — quadratic in each SBS's aggregate
  *weighted residual* load that falls back to the BS.
- SBS operating cost ``g_t(Y) = sum_n ( sum_{m in n} omega-hat_m *
  sum_k y[m,k] * lam[m,k] )**2``.
- Replacement cost ``h(X_t, X_{t-1}) = sum_n beta_n *
  sum_k (x[n,k,t] - x[n,k,t-1])^+``.

The quadratic shape is the paper's representative choice; any non-decreasing
convex function of the per-SBS aggregate is admissible, so the shape is
pluggable through :class:`OperatingCost`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.exceptions import DimensionMismatchError
from repro.network.topology import Network
from repro.types import FloatArray


class OperatingCost(Protocol):
    """A non-decreasing convex scalar cost applied to per-SBS aggregate loads.

    ``evaluate`` maps a vector of per-SBS aggregates to the summed cost;
    ``derivative`` returns the elementwise derivative (used by gradient
    solvers via the chain rule).
    """

    def evaluate(self, aggregates: FloatArray) -> float:
        """Total cost ``sum_n phi(aggregates[n])``."""
        ...

    def derivative(self, aggregates: FloatArray) -> FloatArray:
        """Elementwise ``phi'(aggregates[n])``, same shape as the input."""
        ...


@dataclass(frozen=True)
class QuadraticOperatingCost:
    """The paper's representative cost ``phi(u) = scale * u**2`` (Eqs. 5-6)."""

    scale: float = 1.0

    def evaluate(self, aggregates: FloatArray) -> float:
        return float(self.scale * np.sum(np.square(aggregates)))

    def derivative(self, aggregates: FloatArray) -> FloatArray:
        return 2.0 * self.scale * aggregates


@dataclass(frozen=True)
class LinearOperatingCost:
    """Linear energy model of Arnold et al. [23]: ``phi(u) = scale * u``.

    Included as the alternative cost shape the paper discusses in Section
    II-B; convex but not strictly convex.
    """

    scale: float = 1.0

    def evaluate(self, aggregates: FloatArray) -> float:
        return float(self.scale * np.sum(aggregates))

    def derivative(self, aggregates: FloatArray) -> FloatArray:
        return np.full_like(aggregates, self.scale)


def _check_mk(network: Network, arr: FloatArray, name: str) -> None:
    expected = (network.num_classes, network.num_items)
    if arr.shape != expected:
        raise DimensionMismatchError(
            f"{name} has shape {arr.shape}, expected (M, K) = {expected}"
        )


def aggregate_bs_load(
    network: Network, demand: FloatArray, y: FloatArray
) -> FloatArray:
    """Per-SBS weighted load served by the BS, shape ``(N,)``.

    Entry ``n`` is ``sum_{m in n} omega_m * sum_k (1 - y[m,k]) * lam[m,k]``.
    """
    _check_mk(network, demand, "demand")
    _check_mk(network, y, "y")
    per_class = network.omega_bs * ((1.0 - y) * demand).sum(axis=1)
    return np.bincount(
        network.class_sbs, weights=per_class, minlength=network.num_sbs
    )


def aggregate_sbs_load(
    network: Network, demand: FloatArray, y: FloatArray
) -> FloatArray:
    """Per-SBS weighted load served locally, shape ``(N,)``.

    Entry ``n`` is ``sum_{m in n} omega-hat_m * sum_k y[m,k] * lam[m,k]``.
    """
    _check_mk(network, demand, "demand")
    _check_mk(network, y, "y")
    per_class = network.omega_sbs * (y * demand).sum(axis=1)
    return np.bincount(
        network.class_sbs, weights=per_class, minlength=network.num_sbs
    )


def bs_operating_cost(
    network: Network,
    demand: FloatArray,
    y: FloatArray,
    cost: OperatingCost | None = None,
) -> float:
    """``f_t(Y)`` — Eq. 5 (or a plugged-in convex alternative)."""
    cost = cost or QuadraticOperatingCost()
    return cost.evaluate(aggregate_bs_load(network, demand, y))


def sbs_operating_cost(
    network: Network,
    demand: FloatArray,
    y: FloatArray,
    cost: OperatingCost | None = None,
) -> float:
    """``g_t(Y)`` — Eq. 6 (or a plugged-in convex alternative)."""
    cost = cost or QuadraticOperatingCost()
    return cost.evaluate(aggregate_sbs_load(network, demand, y))


def replacement_cost(
    network: Network, x: FloatArray, x_prev: FloatArray
) -> float:
    """``h(X_t, X_{t-1})`` — Eq. 8, with per-SBS ``beta_n`` weights.

    ``x`` and ``x_prev`` have shape ``(N, K)``; values may be fractional
    (relaxed iterates) — the positive-part definition applies unchanged.
    """
    expected = (network.num_sbs, network.num_items)
    if x.shape != expected or x_prev.shape != expected:
        raise DimensionMismatchError(
            f"x has shape {x.shape}, x_prev {x_prev.shape}, expected (N, K) = {expected}"
        )
    inserted = np.clip(x - x_prev, 0.0, None).sum(axis=1)
    return float(np.dot(network.replacement_costs, inserted))


def replacement_count(x: FloatArray, x_prev: FloatArray, *, atol: float = 1e-6) -> int:
    """Number of cache insertions between two (integral) cache states."""
    return int(np.count_nonzero((x - x_prev) > atol))


@dataclass(frozen=True)
class CostBreakdown:
    """Itemized cost of a trajectory (the four quantities Fig. 2 plots).

    Attributes
    ----------
    bs_cost:
        Total BS operating cost ``sum_t f_t`` (Fig. 2d's series).
    sbs_cost:
        Total SBS operating cost ``sum_t g_t``.
    replacement:
        Total cache replacement cost ``sum_t h`` (Fig. 2b's series).
    replacements:
        Total number of cache insertions (Fig. 2c's series).
    """

    bs_cost: float
    sbs_cost: float
    replacement: float
    replacements: int

    @property
    def operating(self) -> float:
        """Operating cost excluding replacement: ``f + g``."""
        return self.bs_cost + self.sbs_cost

    @property
    def total(self) -> float:
        """Total system cost ``f + g + h`` (Fig. 2a's series)."""
        return self.bs_cost + self.sbs_cost + self.replacement

    def __add__(self, other: "CostBreakdown") -> "CostBreakdown":
        return CostBreakdown(
            self.bs_cost + other.bs_cost,
            self.sbs_cost + other.sbs_cost,
            self.replacement + other.replacement,
            self.replacements + other.replacements,
        )

    @staticmethod
    def zero() -> "CostBreakdown":
        return CostBreakdown(0.0, 0.0, 0.0, 0)


def total_cost(
    network: Network,
    demand: FloatArray,
    x: FloatArray,
    y: FloatArray,
    *,
    x_initial: FloatArray | None = None,
    bs_cost: OperatingCost | None = None,
    sbs_cost: OperatingCost | None = None,
) -> CostBreakdown:
    """Itemized cost of a full trajectory.

    Parameters
    ----------
    demand:
        Shape ``(T, M, K)``.
    x:
        Caching trajectory, shape ``(T, N, K)``.
    y:
        Load-balancing trajectory, shape ``(T, M, K)``.
    x_initial:
        Cache state before slot 0; defaults to the empty cache, matching the
        paper's convention ``x^t = 0`` for ``t <= 0``.
    """
    T = demand.shape[0]
    if x.shape[0] != T or y.shape[0] != T:
        raise DimensionMismatchError(
            f"trajectories disagree on horizon: demand T={T}, x {x.shape[0]}, y {y.shape[0]}"
        )
    prev = (
        np.zeros((network.num_sbs, network.num_items))
        if x_initial is None
        else x_initial
    )
    out = CostBreakdown.zero()
    for t in range(T):
        out = out + CostBreakdown(
            bs_operating_cost(network, demand[t], y[t], bs_cost),
            sbs_operating_cost(network, demand[t], y[t], sbs_cost),
            replacement_cost(network, x[t], prev),
            replacement_count(x[t], prev),
        )
        prev = x[t]
    return out

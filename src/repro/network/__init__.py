"""5G network model: base station, small base stations, MU classes, costs.

This package models the system of Section II of the paper: one macro base
station (BS), ``N`` small base stations (SBSs) with finite cache and
bandwidth, and classes of mobile users (MUs) attached to exactly one SBS.
"""

from repro.network.content import ContentCatalog
from repro.network.costs import (
    OperatingCost,
    QuadraticOperatingCost,
    LinearOperatingCost,
    bs_operating_cost,
    sbs_operating_cost,
    replacement_cost,
    replacement_count,
    total_cost,
    CostBreakdown,
)
from repro.network.stations import BaseStation, SmallBaseStation
from repro.network.topology import Network
from repro.network.users import MUClass

__all__ = [
    "BaseStation",
    "ContentCatalog",
    "CostBreakdown",
    "LinearOperatingCost",
    "MUClass",
    "Network",
    "OperatingCost",
    "QuadraticOperatingCost",
    "SmallBaseStation",
    "bs_operating_cost",
    "replacement_cost",
    "replacement_count",
    "sbs_operating_cost",
    "total_cost",
]

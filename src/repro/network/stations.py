"""Base station and small base station models.

An SBS (micro/pico/femto cell) is characterized by:

- a cache of ``cache_size`` unit-size items (constraint (1) of the paper),
- a downlink ``bandwidth`` capacity in items per slot (constraint (2)),
- a per-item cache ``replacement_cost`` ``beta_n`` (Eq. 7).

The macro BS is assumed uncapacitated: any request not served by an SBS is
served by the BS (constraint (4)), at the operating cost modeled in
:mod:`repro.network.costs`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class BaseStation:
    """The macro base station.

    The BS stores the whole catalog and has unbounded serving capacity; its
    cost of serving appears only through the operating-cost function
    ``f_t``. ``name`` exists for reporting in multi-cell scenarios.
    """

    name: str = "BS"


@dataclass(frozen=True)
class SmallBaseStation:
    """A small base station ``n`` with finite cache and bandwidth.

    Parameters
    ----------
    sbs_id:
        Index of this SBS within the network (``0..N-1``).
    cache_size:
        ``C_n`` — maximum number of unit-size items cached simultaneously.
    bandwidth:
        ``B_n`` — maximum total demand volume served per slot,
        ``sum_{m,k} lambda[m,k] * y[m,k] <= B_n``.
    replacement_cost:
        ``beta_n`` — cost of fetching one new item into the cache
        (Eq. 7). Covers energy, update delay, and backhaul usage.
    """

    sbs_id: int
    cache_size: int
    bandwidth: float
    replacement_cost: float

    def __post_init__(self) -> None:
        if self.sbs_id < 0:
            raise ConfigurationError(f"sbs_id must be >= 0, got {self.sbs_id}")
        if int(self.cache_size) != self.cache_size or self.cache_size < 0:
            raise ConfigurationError(
                f"cache_size must be a non-negative integer, got {self.cache_size}"
            )
        if self.bandwidth < 0:
            raise ConfigurationError(f"bandwidth must be >= 0, got {self.bandwidth}")
        if self.replacement_cost < 0:
            raise ConfigurationError(
                f"replacement_cost must be >= 0, got {self.replacement_cost}"
            )

    @property
    def name(self) -> str:
        return f"SBS-{self.sbs_id}"

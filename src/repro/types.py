"""Shared type aliases and small value objects used across the library.

The library consistently uses the following array conventions:

- Demand matrices are ``float64`` arrays of shape ``(T, M, K)`` where ``T``
  is the number of timeslots, ``M`` the total number of MU classes (across
  all SBSs), and ``K`` the catalog size.
- Caching decisions are arrays of shape ``(T, N, K)`` with values in
  ``{0, 1}`` (or ``[0, 1]`` for relaxed iterates).
- Load-balancing decisions are arrays of shape ``(T, M, K)`` with values in
  ``[0, 1]``; entry ``y[t, m, k]`` is the fraction of class ``m``'s demand
  for content ``k`` served by its SBS in slot ``t``.
"""

from __future__ import annotations

from typing import Union

import numpy as np
import numpy.typing as npt

FloatArray = npt.NDArray[np.float64]
IntArray = npt.NDArray[np.int64]
BoolArray = npt.NDArray[np.bool_]

ArrayLike = Union[npt.ArrayLike, FloatArray]

#: Absolute tolerance used when deciding whether a relaxed caching variable
#: is integral.
INTEGRALITY_ATOL: float = 1e-6

#: Default relative duality-gap tolerance for the primal-dual algorithm
#: (the paper's Algorithm 1 uses ``epsilon = 0.0001``).
DEFAULT_GAP_TOL: float = 1e-4


def as_float_array(values: ArrayLike, *, name: str = "array") -> FloatArray:
    """Convert ``values`` to a C-contiguous float64 array.

    Raises :class:`~repro.exceptions.ConfigurationError` when the input
    contains NaNs or infinities, which would silently poison downstream
    optimization otherwise.
    """
    from repro.exceptions import ConfigurationError

    arr = np.ascontiguousarray(values, dtype=np.float64)
    if not np.all(np.isfinite(arr)):
        raise ConfigurationError(f"{name} contains non-finite values")
    return arr


def is_binary(values: FloatArray, *, atol: float = INTEGRALITY_ATOL) -> bool:
    """Return ``True`` when every entry of ``values`` is within ``atol`` of 0 or 1."""
    return bool(np.all(np.minimum(np.abs(values), np.abs(values - 1.0)) <= atol))

"""Typed exception hierarchy for the ``repro`` library.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish configuration problems from numerical ones.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A scenario, network, or algorithm was configured inconsistently.

    Examples: a negative cache size, a demand matrix whose shape does not
    match the network, or a CHC commitment level larger than the prediction
    window.
    """


class InfeasibleProblemError(ReproError):
    """The optimization problem has no feasible point.

    Raised, e.g., when an LP's constraint set is empty or when a projection
    target set is empty (such as a capped simplex with an unreachable sum).
    """


class UnboundedProblemError(ReproError):
    """The optimization problem is unbounded below."""


class SolverError(ReproError):
    """A numerical solver failed to converge or returned an invalid result."""


class DimensionMismatchError(ConfigurationError):
    """Array arguments have inconsistent shapes."""

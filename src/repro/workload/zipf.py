"""Zipf-Mandelbrot content popularity model (paper Eq. 49).

The paper models MU request patterns with the Zipf-Mandelbrot law

    p(i) = K / (i + q)**alpha,

with shape ``alpha = 0.8`` and shift ``q = 30`` in the simulations
(Section V-B). Ranks are 1-based in the formula; this module exposes both
the raw (unnormalized) weights exactly as Eq. 49 writes them and a
normalized pmf for sampling.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.types import FloatArray

#: Paper defaults (Section V-B).
DEFAULT_ALPHA: float = 0.8
DEFAULT_SHIFT: float = 30.0


def zipf_mandelbrot_weights(
    num_items: int,
    *,
    alpha: float = DEFAULT_ALPHA,
    shift: float = DEFAULT_SHIFT,
) -> FloatArray:
    """Unnormalized Zipf-Mandelbrot weights ``K / (i + q)**alpha``.

    ``i`` runs over ranks ``1..num_items`` and the leading constant is the
    catalog size ``K`` exactly as in Eq. 49, so the weights carry the same
    scale the paper's generator uses.
    """
    if num_items <= 0:
        raise ConfigurationError(f"num_items must be positive, got {num_items}")
    if alpha < 0:
        raise ConfigurationError(f"alpha must be >= 0, got {alpha}")
    if shift <= -1:
        raise ConfigurationError(f"shift must be > -1, got {shift}")
    ranks = np.arange(1, num_items + 1, dtype=np.float64)
    return num_items / np.power(ranks + shift, alpha)


def zipf_mandelbrot_pmf(
    num_items: int,
    *,
    alpha: float = DEFAULT_ALPHA,
    shift: float = DEFAULT_SHIFT,
) -> FloatArray:
    """Normalized Zipf-Mandelbrot pmf over ranks ``1..num_items``."""
    weights = zipf_mandelbrot_weights(num_items, alpha=alpha, shift=shift)
    return weights / weights.sum()

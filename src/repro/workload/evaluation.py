"""Forecast-quality measurement for demand predictors.

Quantifies what a predictor actually delivers — per-lookahead error
profiles — so that scenario calibrations ("eta = 0.1 with frozen noise")
can be verified empirically rather than assumed. Used by the prediction
examples and the workload test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.types import FloatArray
from repro.workload.demand import DemandMatrix
from repro.workload.predictor import DemandPredictor


@dataclass(frozen=True)
class ForecastProfile:
    """Per-lookahead-distance error statistics of a predictor.

    Attributes
    ----------
    mape:
        Mean absolute percentage error at each lookahead ``d = 0..w-1``
        (over entries with positive true demand), shape ``(w,)``.
    bias:
        Mean signed relative error at each lookahead, shape ``(w,)``.
    """

    mape: FloatArray
    bias: FloatArray

    @property
    def window(self) -> int:
        return self.mape.shape[0]

    def is_degrading(self, *, factor: float = 1.2) -> bool:
        """True when the far end of the window is at least ``factor`` times
        noisier than the near end."""
        near = float(self.mape[0])
        far = float(self.mape[-1])
        if near == 0.0:
            return far > 0.0
        return far >= factor * near


def profile_predictor(
    predictor: DemandPredictor,
    demand: DemandMatrix,
    *,
    window: int,
    decision_times: range | None = None,
) -> ForecastProfile:
    """Measure a predictor's error profile against the true demand.

    Issues a forecast window at each decision time and accumulates relative
    errors bucketed by lookahead distance.
    """
    if window <= 0:
        raise ConfigurationError(f"window must be positive, got {window}")
    times = decision_times or range(max(demand.horizon - window + 1, 1))
    abs_err = np.zeros(window)
    signed_err = np.zeros(window)
    counts = np.zeros(window)
    for tau in times:
        forecast = predictor.predict_window(tau, tau, window)
        for d in range(window):
            t = tau + d
            if not 0 <= t < demand.horizon:
                continue
            true = demand.rates[t]
            mask = true > 0
            if not np.any(mask):
                continue
            rel = (forecast[d][mask] - true[mask]) / true[mask]
            abs_err[d] += float(np.abs(rel).sum())
            signed_err[d] += float(rel.sum())
            counts[d] += int(mask.sum())
    with np.errstate(divide="ignore", invalid="ignore"):
        mape = np.where(counts > 0, abs_err / counts, 0.0)
        bias = np.where(counts > 0, signed_err / counts, 0.0)
    return ForecastProfile(mape=mape, bias=bias)

"""Discrete request traces sampled from mean arrival rates.

The optimization model works with mean rates ``lambda[t, m, k]``; real
systems see integer request counts. :func:`sample_poisson_trace` bridges
the two by sampling Poisson counts around the rates, which examples use to
drive cache baselines the way a deployed SBS would (counting actual
requests rather than reading rates).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DimensionMismatchError
from repro.types import FloatArray, IntArray
from repro.workload.demand import DemandMatrix


@dataclass(frozen=True)
class RequestTrace:
    """Integer request counts per ``(slot, class, item)``, shape ``(T, M, K)``."""

    counts: IntArray

    def __post_init__(self) -> None:
        counts = np.ascontiguousarray(self.counts, dtype=np.int64)
        if counts.ndim != 3:
            raise DimensionMismatchError(
                f"trace must have shape (T, M, K), got {counts.shape}"
            )
        object.__setattr__(self, "counts", counts)

    @property
    def horizon(self) -> int:
        return self.counts.shape[0]

    def per_item_counts(self, t: int) -> IntArray:
        """Aggregate request count per item in slot ``t``, shape ``(K,)``."""
        return self.counts[t].sum(axis=0)

    def to_demand(self) -> DemandMatrix:
        """Reinterpret the counts as a (deterministic) demand matrix."""
        return DemandMatrix(self.counts.astype(np.float64))


def sample_poisson_trace(
    demand: DemandMatrix, *, rng: np.random.Generator
) -> RequestTrace:
    """Sample a Poisson request trace with the given mean rates."""
    counts = rng.poisson(demand.rates).astype(np.int64)
    return RequestTrace(counts)


def empirical_rates(trace: RequestTrace, *, smoothing: float = 0.0) -> FloatArray:
    """Estimate per-slot rates from a trace (optionally Laplace-smoothed)."""
    counts = trace.counts.astype(np.float64)
    if smoothing > 0:
        counts = counts + smoothing
    return counts

"""Demand predictors used by the online controllers (Section V-B).

Online algorithms see only *predictions* of future demand inside a lookahead
window of ``w`` slots. The paper models prediction error multiplicatively:
with perturbation parameter ``eta`` each predicted popularity value is drawn
uniformly from ``[(1 - eta) * p, (1 + eta) * p]``. We apply the same
multiplicative perturbation directly to the demand entries (demand is
density times popularity, so perturbing either factor is equivalent).

Three noise modes are provided:

- ``degrading`` (default): the error has two parts. A *frozen* base
  component at level ``eta`` (an irreducible per-slot forecast bias that
  every re-issue of the forecast repeats), plus an *excess* component at
  level ``eta * (sqrt(t - tau + 1) - 1)`` that grows with lookahead
  distance and is re-drawn at every decision time. This follows the
  paper's own premise that "the prediction quality would be worse if
  predicted further into the future" (Section IV) and is what makes the
  commitment level matter: AFHC commits a whole window on stale long-range
  forecasts while RHC always acts on the freshest one — yet RHC does not
  churn, because the short-range forecast (pure base component) is stable
  across its re-solves.
- ``frozen``: the perturbation factor of slot ``t`` is fixed once per
  trace at level ``eta``, so every controller that looks at slot ``t`` —
  from whichever decision time — sees the same forecast.
- ``resample``: like ``frozen`` per-slot levels, but every
  ``(decision_time, window)`` pair gets fresh noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal, Protocol

import numpy as np

from repro.exceptions import ConfigurationError
from repro.types import FloatArray
from repro.workload.demand import DemandMatrix


class DemandPredictor(Protocol):
    """Forecast interface used by all online controllers."""

    def predict_window(self, decided_at: int, start: int, length: int) -> FloatArray:
        """Forecast demand for slots ``start..start+length-1``.

        ``decided_at`` is the slot at which the forecast is requested (used
        only by the ``resample`` noise mode). Returns shape ``(length, M, K)``,
        zero-padded outside the trace horizon.
        """
        ...


@dataclass(frozen=True)
class PerfectPredictor:
    """Oracle predictor: returns the true demand (``eta = 0``)."""

    demand: DemandMatrix

    def predict_window(self, decided_at: int, start: int, length: int) -> FloatArray:
        return self.demand.window(start, length)


@dataclass(frozen=True)
class PerturbedPredictor:
    """The paper's multiplicative-noise predictor.

    Parameters
    ----------
    demand:
        Ground-truth demand trace.
    eta:
        Base perturbation level in ``[0, 1]``. In ``frozen``/``resample``
        modes every forecast entry is the true rate scaled by
        ``U[1 - eta, 1 + eta]``; in ``degrading`` mode the scale is the
        product of a frozen ``U[1 -+ eta]`` base factor and a fresh excess
        factor at level ``eta * (sqrt(d + 1) - 1)`` for lookahead ``d``.
    seed:
        Seed of the noise stream.
    mode:
        ``"degrading"`` (default), ``"frozen"``, or ``"resample"``.
    """

    demand: DemandMatrix
    eta: float
    seed: int = 0
    mode: Literal["degrading", "frozen", "resample"] = "degrading"
    _frozen_factors: FloatArray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.eta <= 1.0:
            raise ConfigurationError(f"eta must be in [0, 1], got {self.eta}")
        if self.mode not in ("degrading", "frozen", "resample"):
            raise ConfigurationError(f"unknown noise mode {self.mode!r}")
        rng = np.random.default_rng(self.seed)
        factors = rng.uniform(
            1.0 - self.eta, 1.0 + self.eta, size=self.demand.rates.shape
        )
        object.__setattr__(self, "_frozen_factors", factors)

    def predict_window(self, decided_at: int, start: int, length: int) -> FloatArray:
        true = self.demand.window(start, length)
        if self.eta == 0.0:
            return true
        if self.mode == "frozen":
            factors = np.ones_like(true)
            lo = max(start, 0)
            hi = min(start + length, self.demand.horizon)
            if lo < hi:
                factors[lo - start : hi - start] = self._frozen_factors[lo:hi]
            return true * factors
        # A fresh, deterministic stream per (decision time, window start).
        # Decision times can be negative (FHC variants anchor their first
        # window before slot 0), so keys are offset into the non-negatives.
        offset = 1 << 20
        rng = np.random.default_rng(
            np.random.SeedSequence(
                entropy=self.seed,
                spawn_key=(decided_at + offset, start + offset),
            )
        )
        if self.mode == "resample":
            factors = rng.uniform(1.0 - self.eta, 1.0 + self.eta, size=true.shape)
            return true * factors
        # degrading: a frozen base bias plus excess noise that widens with
        # lookahead distance from decided_at.
        base = np.ones_like(true)
        lo = max(start, 0)
        hi = min(start + length, self.demand.horizon)
        if lo < hi:
            base[lo - start : hi - start] = self._frozen_factors[lo:hi]
        distances = np.arange(start, start + length) - decided_at
        levels = self.eta * (np.sqrt(np.maximum(distances, 0) + 1.0) - 1.0)
        draws = rng.uniform(-1.0, 1.0, size=true.shape)
        excess = np.maximum(1.0 + levels[:, None, None] * draws, 0.0)
        return true * base * excess


def window_view(
    predictor: DemandPredictor, decided_at: int, window: int
) -> FloatArray:
    """Forecast the ``window`` slots starting at ``decided_at``.

    Convenience wrapper matching the paper's notation ``lambda_{.|tau}``:
    at decision time ``tau`` the controller sees slots ``tau .. tau+w-1``.
    """
    if window <= 0:
        raise ConfigurationError(f"window must be positive, got {window}")
    return predictor.predict_window(decided_at, decided_at, window)

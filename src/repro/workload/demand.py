"""Demand matrices and workload generators.

The central object is :class:`DemandMatrix`, a validated wrapper around the
``(T, M, K)`` array of mean arrival rates ``lambda[t, m, k]`` (paper
notation ``lambda^t_{m_n, k}``). The paper's evaluation workload
(:func:`paper_demand`) draws a per-class request density uniformly from
``[0, 100]`` and spreads it over contents with the Zipf-Mandelbrot pmf;
additional generators provide richer temporal dynamics (diurnal load,
drifting popularity, flash crowds) for examples and stress tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError, DimensionMismatchError
from repro.types import FloatArray, as_float_array
from repro.workload.zipf import DEFAULT_ALPHA, DEFAULT_SHIFT, zipf_mandelbrot_pmf


@dataclass(frozen=True)
class DemandMatrix:
    """Mean request arrival rates over a horizon, shape ``(T, M, K)``.

    The paper's convention ``Lambda^t = 0`` for ``t <= 0`` and ``t > T``
    is implemented by :meth:`slot` and :meth:`window`, which zero-pad
    outside the horizon so receding-horizon controllers can look past the
    end of the trace without special-casing.
    """

    rates: FloatArray

    def __post_init__(self) -> None:
        rates = as_float_array(self.rates, name="demand rates")
        if rates.ndim != 3:
            raise DimensionMismatchError(
                f"demand must have shape (T, M, K), got {rates.shape}"
            )
        if np.any(rates < 0):
            raise ConfigurationError("demand rates must be non-negative")
        object.__setattr__(self, "rates", rates)

    @property
    def horizon(self) -> int:
        """Number of timeslots ``T``."""
        return self.rates.shape[0]

    @property
    def num_classes(self) -> int:
        return self.rates.shape[1]

    @property
    def num_items(self) -> int:
        return self.rates.shape[2]

    def slot(self, t: int) -> FloatArray:
        """Demand of slot ``t``; zero outside ``0..T-1``."""
        if 0 <= t < self.horizon:
            return self.rates[t]
        return np.zeros(self.rates.shape[1:], dtype=np.float64)

    def window(self, start: int, length: int) -> FloatArray:
        """Demand for slots ``start..start+length-1``, zero-padded, shape ``(length, M, K)``."""
        if length < 0:
            raise ConfigurationError(f"window length must be >= 0, got {length}")
        out = np.zeros((length, *self.rates.shape[1:]), dtype=np.float64)
        lo = max(start, 0)
        hi = min(start + length, self.horizon)
        if lo < hi:
            out[lo - start : hi - start] = self.rates[lo:hi]
        return out

    def total_volume(self) -> float:
        """Total request volume over the horizon."""
        return float(self.rates.sum())

    def popularity(self) -> FloatArray:
        """Aggregate per-item demand share over the whole trace, shape ``(K,)``."""
        per_item = self.rates.sum(axis=(0, 1))
        total = per_item.sum()
        if total == 0:
            return np.full(self.num_items, 1.0 / self.num_items)
        return per_item / total


def _validated_sizes(horizon: int, num_classes: int, num_items: int) -> None:
    if horizon <= 0:
        raise ConfigurationError(f"horizon must be positive, got {horizon}")
    if num_classes <= 0:
        raise ConfigurationError(f"num_classes must be positive, got {num_classes}")
    if num_items <= 0:
        raise ConfigurationError(f"num_items must be positive, got {num_items}")


def paper_demand(
    horizon: int,
    num_classes: int,
    num_items: int,
    *,
    rng: np.random.Generator,
    alpha: float = DEFAULT_ALPHA,
    shift: float = DEFAULT_SHIFT,
    density_range: tuple[float, float] = (0.0, 100.0),
    per_class_preference: bool = True,
    density_mode: str = "random_walk",
    density_jitter: float = 0.3,
    density_step: float = 0.08,
) -> DemandMatrix:
    """The paper's evaluation workload (Section V-B).

    Per MU class ``m`` a request density is drawn uniformly from
    ``density_range`` (the paper states ``[0, 100]``) and distributed over
    contents by the Zipf-Mandelbrot pmf with the paper's ``alpha = 0.8``
    and ``q = 30``.

    Two aspects are under-specified in the paper and controlled here
    explicitly (see DESIGN.md for the full reasoning):

    - ``per_class_preference`` (default ``True``): each class ranks the
      catalog by its own random permutation of the Zipf weights. With a
      *shared* ranking every policy — LRFU included — caches the same
      top-``C`` items and all of the paper's comparison curves collapse
      onto each other, so the figures imply heterogeneous preferences.
    - ``density_mode``: how each class's density evolves over time.
      ``"random_walk"`` (default) lets densities drift as a reflected
      random walk inside ``density_range`` — the workload is
      non-stationary at the multi-slot timescale, so the optimal cache
      changes over time, LRFU's per-slot re-ranking produces the constant
      nonzero replacement stream Figs. 2b-2c show, and prediction windows
      have something to predict. ``"per_slot"`` re-draws densities IID
      every slot (non-stationary but memoryless); ``"static"`` draws one
      density per class for the whole horizon (strictly stationary).
    - ``density_jitter``: per-slot multiplicative noise ``U[1 -+ jitter]``
      applied on top of the density process — fast transient fluctuation
      that a myopic policy chases (LRFU re-ranks on it every slot) while a
      switching-cost-aware policy rides out. Set 0 to disable.
    - ``density_step``: random-walk step size as a fraction of the density
      range per slot (``random_walk`` mode only).
    """
    _validated_sizes(horizon, num_classes, num_items)
    lo, hi = density_range
    if lo < 0 or hi < lo:
        raise ConfigurationError(f"invalid density range {density_range}")
    if density_mode not in ("random_walk", "per_slot", "static"):
        raise ConfigurationError(f"unknown density_mode {density_mode!r}")

    pmf = zipf_mandelbrot_pmf(num_items, alpha=alpha, shift=shift)
    if per_class_preference:
        preferences = np.stack(
            [rng.permutation(num_items) for _ in range(num_classes)]
        )
        per_class_pmf = pmf[preferences]  # (M, K)
    else:
        per_class_pmf = np.broadcast_to(pmf, (num_classes, num_items))

    if density_jitter < 0 or density_jitter > 1:
        raise ConfigurationError(f"density_jitter must be in [0, 1], got {density_jitter}")
    if density_mode == "per_slot":
        densities = rng.uniform(lo, hi, size=(horizon, num_classes))
    elif density_mode == "random_walk":
        densities = _reflected_random_walk(
            horizon, num_classes, lo, hi, rng, step_fraction=density_step
        )
    else:
        densities = np.broadcast_to(
            rng.uniform(lo, hi, size=num_classes), (horizon, num_classes)
        ).copy()
    if density_jitter > 0:
        densities = densities * rng.uniform(
            1.0 - density_jitter, 1.0 + density_jitter, size=(horizon, num_classes)
        )
    rates = densities[:, :, None] * per_class_pmf[None, :, :]
    return DemandMatrix(np.ascontiguousarray(rates))


def _reflected_random_walk(
    horizon: int,
    num_classes: int,
    lo: float,
    hi: float,
    rng: np.random.Generator,
    *,
    step_fraction: float = 0.08,
) -> FloatArray:
    """Per-class densities drifting as a reflected random walk in [lo, hi].

    The step size is ``step_fraction`` of the range per slot, so the walk
    decorrelates over roughly ``1 / step_fraction**2 ~ 150`` slots while
    moving visibly within a 10-slot prediction window.
    """
    span = hi - lo
    walk = np.empty((horizon, num_classes))
    walk[0] = rng.uniform(lo, hi, size=num_classes)
    if span == 0:
        walk[:] = walk[0]
        return walk
    steps = rng.normal(0.0, step_fraction * span, size=(horizon - 1, num_classes))
    for t in range(1, horizon):
        proposal = walk[t - 1] + steps[t - 1]
        # Reflect at the boundaries to stay inside [lo, hi].
        proposal = np.where(proposal > hi, 2 * hi - proposal, proposal)
        proposal = np.where(proposal < lo, 2 * lo - proposal, proposal)
        walk[t] = np.clip(proposal, lo, hi)
    return walk


def constant_demand(
    horizon: int, per_slot: FloatArray
) -> DemandMatrix:
    """Repeat a single-slot demand matrix over ``horizon`` slots."""
    per_slot = as_float_array(per_slot, name="per-slot demand")
    if per_slot.ndim != 2:
        raise DimensionMismatchError(
            f"per-slot demand must have shape (M, K), got {per_slot.shape}"
        )
    rates = np.broadcast_to(per_slot, (horizon, *per_slot.shape)).copy()
    return DemandMatrix(rates)


def diurnal_demand(
    horizon: int,
    num_classes: int,
    num_items: int,
    *,
    rng: np.random.Generator,
    period: int = 24,
    peak_to_trough: float = 3.0,
    alpha: float = DEFAULT_ALPHA,
    shift: float = DEFAULT_SHIFT,
    density_range: tuple[float, float] = (0.0, 100.0),
) -> DemandMatrix:
    """Sinusoidal day/night demand: the paper's workload modulated in time.

    Captures the "temporal variability of network traffic" the introduction
    motivates (cache updates can happen in low-traffic periods).
    """
    _validated_sizes(horizon, num_classes, num_items)
    if period <= 0:
        raise ConfigurationError(f"period must be positive, got {period}")
    if peak_to_trough < 1.0:
        raise ConfigurationError(
            f"peak_to_trough must be >= 1, got {peak_to_trough}"
        )
    base = paper_demand(
        horizon,
        num_classes,
        num_items,
        rng=rng,
        alpha=alpha,
        shift=shift,
        density_range=density_range,
    )
    t = np.arange(horizon, dtype=np.float64)
    # Oscillates in [2/(1+p2t), 2*p2t/(1+p2t)] with mean 1, ratio peak_to_trough.
    amplitude = (peak_to_trough - 1.0) / (peak_to_trough + 1.0)
    modulation = 1.0 + amplitude * np.sin(2.0 * np.pi * t / period)
    return DemandMatrix(base.rates * modulation[:, None, None])


def shifting_popularity_demand(
    horizon: int,
    num_classes: int,
    num_items: int,
    *,
    rng: np.random.Generator,
    shift_every: int = 20,
    alpha: float = DEFAULT_ALPHA,
    shift: float = DEFAULT_SHIFT,
    density_range: tuple[float, float] = (0.0, 100.0),
) -> DemandMatrix:
    """Popularity ranks re-shuffle every ``shift_every`` slots.

    Exercises cache churn: a policy that never replaces contents pays a
    growing BS cost as the popular set drifts away from its cache.
    """
    _validated_sizes(horizon, num_classes, num_items)
    if shift_every <= 0:
        raise ConfigurationError(f"shift_every must be positive, got {shift_every}")
    lo, hi = density_range
    densities = rng.uniform(lo, hi, size=num_classes)
    pmf = zipf_mandelbrot_pmf(num_items, alpha=alpha, shift=shift)
    rates = np.zeros((horizon, num_classes, num_items))
    perm = rng.permutation(num_items)
    for t in range(horizon):
        if t % shift_every == 0 and t > 0:
            perm = rng.permutation(num_items)
        rates[t] = densities[:, None] * pmf[perm][None, :]
    return DemandMatrix(rates)


def flash_crowd_demand(
    horizon: int,
    num_classes: int,
    num_items: int,
    *,
    rng: np.random.Generator,
    crowd_item: int = 0,
    start: int | None = None,
    duration: int = 10,
    magnitude: float = 5.0,
    alpha: float = DEFAULT_ALPHA,
    shift: float = DEFAULT_SHIFT,
    density_range: tuple[float, float] = (0.0, 100.0),
) -> DemandMatrix:
    """A sudden surge of demand for one item (e.g. a viral video).

    Between ``start`` and ``start + duration`` the demand for
    ``crowd_item`` is multiplied by ``magnitude``.
    """
    _validated_sizes(horizon, num_classes, num_items)
    if not 0 <= crowd_item < num_items:
        raise ConfigurationError(
            f"crowd_item {crowd_item} outside catalog of size {num_items}"
        )
    if duration <= 0:
        raise ConfigurationError(f"duration must be positive, got {duration}")
    if magnitude <= 0:
        raise ConfigurationError(f"magnitude must be positive, got {magnitude}")
    base = paper_demand(
        horizon,
        num_classes,
        num_items,
        rng=rng,
        alpha=alpha,
        shift=shift,
        density_range=density_range,
    )
    rates = base.rates.copy()
    s = horizon // 3 if start is None else start
    e = min(s + duration, horizon)
    if s < 0 or s >= horizon:
        raise ConfigurationError(f"start {s} outside horizon {horizon}")
    rates[s:e, :, crowd_item] *= magnitude
    return DemandMatrix(rates)

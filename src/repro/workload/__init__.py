"""Workload generation: content popularity, demand matrices, predictors."""

from repro.workload.demand import (
    DemandMatrix,
    constant_demand,
    diurnal_demand,
    flash_crowd_demand,
    paper_demand,
    shifting_popularity_demand,
)
from repro.workload.predictor import (
    DemandPredictor,
    PerfectPredictor,
    PerturbedPredictor,
    window_view,
)
from repro.workload.trace import RequestTrace, sample_poisson_trace
from repro.workload.zipf import zipf_mandelbrot_pmf, zipf_mandelbrot_weights

__all__ = [
    "DemandMatrix",
    "DemandPredictor",
    "PerfectPredictor",
    "PerturbedPredictor",
    "RequestTrace",
    "constant_demand",
    "diurnal_demand",
    "flash_crowd_demand",
    "paper_demand",
    "sample_poisson_trace",
    "shifting_popularity_demand",
    "window_view",
    "zipf_mandelbrot_pmf",
    "zipf_mandelbrot_weights",
]

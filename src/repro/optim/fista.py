"""Accelerated projected gradient (FISTA) for smooth convex minimization.

Used to solve the load-balancing subproblem ``P2`` (Eq. 19): a smooth
convex objective over a box-plus-halfspace feasible set whose projection is
cheap (:mod:`repro.optim.projection`). Implements FISTA with backtracking
line search on the Lipschitz estimate and an optional monotone restart,
which keeps convergence robust when the quadratic's curvature varies across
iterates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.exceptions import SolverError
from repro.obs.convergence import ConvergenceRecorder, ConvergenceTrace
from repro.optim.budget import SolveBudget
from repro.types import FloatArray

Objective = Callable[[FloatArray], float]
Gradient = Callable[[FloatArray], FloatArray]
Projection = Callable[[FloatArray], FloatArray]


@dataclass(frozen=True)
class FistaResult:
    """Outcome of a FISTA run.

    Attributes
    ----------
    x:
        The final (feasible) iterate.
    objective:
        Objective value at ``x``.
    iterations:
        Number of outer iterations performed.
    converged:
        Whether the stopping criterion was met before ``max_iter``.
    stopped_by_budget:
        Whether an anytime budget cut the loop short; ``x`` is then the
        best (feasible, since every iterate is projected) point reached.
    trace:
        Optional per-iteration :class:`repro.obs.convergence.ConvergenceTrace`
        (columns ``objective``, ``residual``, ``lipschitz``) of **accepted**
        iterates; with the monotone restart enabled the ``objective`` series
        is non-increasing. Populated when ``minimize_fista`` is given a
        recorder.
    """

    x: FloatArray
    objective: float
    iterations: int
    converged: bool
    stopped_by_budget: bool = False
    trace: ConvergenceTrace | None = None


def minimize_fista(
    objective: Objective,
    gradient: Gradient,
    project: Projection,
    x0: FloatArray,
    *,
    lipschitz: float | None = None,
    tol: float = 1e-8,
    max_iter: int = 2000,
    restart: bool = True,
    budget: SolveBudget | None = None,
    recorder: ConvergenceRecorder | None = None,
) -> FistaResult:
    """Minimize a smooth convex ``objective`` over the set defined by ``project``.

    Parameters
    ----------
    objective, gradient:
        The smooth convex function and its gradient.
    project:
        Euclidean projection onto the (closed convex) feasible set.
    x0:
        Starting point (projected before use).
    lipschitz:
        Optional known Lipschitz constant of the gradient; when omitted an
        estimate is grown by backtracking.
    tol:
        Convergence threshold on the scaled iterate change
        ``L * ||x_{k+1} - x_k||_inf`` (a proximal-gradient-mapping
        residual), relative to ``1 + |objective|``.
    restart:
        Restart the momentum sequence when the objective increases
        (O'Donoghue-Candes adaptive restart).
    budget:
        Optional anytime budget: once exhausted (checked after each
        completed iteration) the loop returns its current — feasible —
        iterate with ``stopped_by_budget=True`` instead of running to
        ``max_iter``. Used by the degradation path so a degraded slot can
        never stall a window solve.
    recorder:
        Optional :class:`repro.obs.convergence.ConvergenceRecorder`
        (``algorithm="fista"``) fed one row per *accepted* iterate —
        restarted/rejected momentum steps are not recorded, so the
        ``objective`` column is non-increasing when ``restart`` is on. The
        frozen trace is surfaced on the result. Omitting it keeps the loop
        allocation-free per iteration.
    """
    x = project(np.array(x0, dtype=np.float64))
    z = x.copy()
    t_momentum = 1.0
    L = float(lipschitz) if lipschitz else 1.0
    f_x = objective(x)
    if not np.isfinite(f_x):
        raise SolverError("objective is non-finite at the starting point")

    for iteration in range(1, max_iter + 1):
        if budget is not None and iteration > 1 and budget.exhausted(iteration - 1):
            return FistaResult(
                x=x,
                objective=f_x,
                iterations=iteration - 1,
                converged=False,
                stopped_by_budget=True,
                trace=None if recorder is None else recorder.freeze(),
            )
        grad_z = gradient(z)
        f_z = objective(z)
        # Backtracking: grow L until the quadratic upper bound holds at the
        # projected step from z.
        for _ in range(80):
            x_new = project(z - grad_z / L)
            diff = x_new - z
            quad = f_z + float(grad_z @ diff) + 0.5 * L * float(diff @ diff)
            f_new = objective(x_new)
            if f_new <= quad + 1e-12 * max(1.0, abs(quad)):
                break
            L *= 2.0
        else:
            raise SolverError("FISTA backtracking failed to find a valid step size")

        if restart and f_new > f_x + 1e-12 * (1.0 + abs(f_x)):
            # Momentum overshoot: restart from the last good iterate. The
            # relative tolerance matters — comparing exactly traps the loop
            # in endless restarts on float-noise-level increases.
            z = x.copy()
            t_momentum = 1.0
            continue

        residual = L * float(np.max(np.abs(x_new - x)))
        t_next = 0.5 * (1.0 + np.sqrt(1.0 + 4.0 * t_momentum**2))
        z = x_new + ((t_momentum - 1.0) / t_next) * (x_new - x)
        x, f_x, t_momentum = x_new, f_new, t_next
        if recorder is not None:
            recorder.record(objective=f_x, residual=residual, lipschitz=L)

        if residual <= tol * (1.0 + abs(f_x)):
            return FistaResult(
                x=x,
                objective=f_x,
                iterations=iteration,
                converged=True,
                trace=None if recorder is None else recorder.freeze(),
            )

    return FistaResult(
        x=x,
        objective=f_x,
        iterations=max_iter,
        converged=False,
        trace=None if recorder is None else recorder.freeze(),
    )

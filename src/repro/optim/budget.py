"""Anytime solve budgets: iteration / wall-time caps with a feasible fallback.

Both iterative loops in the library — the dual subgradient ascent of
Algorithm 1 (:mod:`repro.core.primal_dual`) and FISTA
(:mod:`repro.optim.fista`) — maintain a best-so-far iterate at every step.
A :class:`SolveBudget` turns that invariant into an *anytime* contract:
when the budget runs out the loop stops and returns its best iterate
instead of stalling the caller. The degradation path depends on this — a
fault-degraded slot must never block the rest of the horizon, so online
controllers cap each window solve (``OnlineSolveSettings.max_seconds``)
and always commit the best feasible trajectory found so far.

The clock starts when the budget object is created; derive per-stage
budgets with :meth:`SolveBudget.remaining_seconds` so nested loops (the
FISTA solve inside one subgradient iteration) share one deadline.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class SolveBudget:
    """A wall-time (and optional iteration) cap for an iterative solver.

    Parameters
    ----------
    max_seconds:
        Wall-clock cap; ``None`` means unlimited.
    max_iter:
        Iteration cap; ``None`` means unlimited (the loops usually carry
        their own ``max_iter`` already — this is a second, outer bound).
    """

    max_seconds: float | None = None
    max_iter: int | None = None
    started: float = field(default_factory=time.perf_counter)

    def elapsed(self) -> float:
        return time.perf_counter() - self.started

    def remaining_seconds(self) -> float | None:
        """Seconds left, clamped at 0; ``None`` when untimed."""
        if self.max_seconds is None:
            return None
        return max(self.max_seconds - self.elapsed(), 0.0)

    def exhausted(self, iteration: int = 0) -> bool:
        """True once either cap is hit.

        Callers check this *after* completing an iteration, so at least one
        iterate always exists — the anytime fallback is never empty.
        """
        if self.max_iter is not None and iteration >= self.max_iter:
            return True
        if self.max_seconds is not None and self.elapsed() >= self.max_seconds:
            return True
        return False

    @classmethod
    def unlimited(cls) -> "SolveBudget":
        return cls()

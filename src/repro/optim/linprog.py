"""Unified linear-programming interface over two interchangeable backends.

- ``"simplex"`` — this library's bounded-variable primal simplex
  (:mod:`repro.optim.simplex`), the method the paper names.
- ``"scipy"`` — scipy's HiGHS solver, used as an independent cross-check
  and as the default for large instances where a dense textbook simplex
  would be slow.
- ``"auto"`` — picks ``simplex`` for small problems and ``scipy`` above
  :data:`AUTO_SIZE_LIMIT` variables.

Both backends are exercised against each other in the test suite; all
higher-level code goes through :func:`solve_lp` and can force a backend for
ablations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np
import scipy.optimize

from repro.exceptions import (
    ConfigurationError,
    InfeasibleProblemError,
    SolverError,
    UnboundedProblemError,
)
from repro.optim.simplex import solve_simplex
from repro.types import FloatArray

Backend = Literal["auto", "simplex", "scipy"]

#: ``auto`` switches from the in-house simplex to HiGHS above this many
#: variables (including slacks).
AUTO_SIZE_LIMIT = 600


@dataclass(frozen=True)
class LPResult:
    """Solution of a linear program.

    Attributes
    ----------
    x:
        Optimal primal point (original variables only; no slacks).
    objective:
        Optimal value.
    backend:
        The backend that produced the solution.
    """

    x: FloatArray
    objective: float
    backend: str


def solve_lp(
    c: FloatArray,
    *,
    A_ub: FloatArray | None = None,
    b_ub: FloatArray | None = None,
    A_eq: FloatArray | None = None,
    b_eq: FloatArray | None = None,
    lo: FloatArray | float = 0.0,
    hi: FloatArray | float = np.inf,
    backend: Backend = "auto",
) -> LPResult:
    """Solve ``min c.x  s.t.  A_ub x <= b_ub, A_eq x = b_eq, lo <= x <= hi``."""
    c = np.asarray(c, dtype=np.float64)
    n = c.shape[0]
    lo_arr = np.broadcast_to(np.asarray(lo, dtype=np.float64), (n,)).copy()
    hi_arr = np.broadcast_to(np.asarray(hi, dtype=np.float64), (n,)).copy()

    n_ub = 0 if A_ub is None else np.asarray(A_ub).shape[0]
    if backend == "auto":
        backend = "simplex" if n + n_ub <= AUTO_SIZE_LIMIT else "scipy"

    if backend == "scipy":
        return _solve_scipy(c, A_ub, b_ub, A_eq, b_eq, lo_arr, hi_arr)
    if backend == "simplex":
        return _solve_own(c, A_ub, b_ub, A_eq, b_eq, lo_arr, hi_arr)
    raise ConfigurationError(f"unknown LP backend {backend!r}")


def _solve_scipy(
    c: FloatArray,
    A_ub: FloatArray | None,
    b_ub: FloatArray | None,
    A_eq: FloatArray | None,
    b_eq: FloatArray | None,
    lo: FloatArray,
    hi: FloatArray,
) -> LPResult:
    res = scipy.optimize.linprog(
        c,
        A_ub=A_ub,
        b_ub=b_ub,
        A_eq=A_eq,
        b_eq=b_eq,
        bounds=np.column_stack([lo, hi]),
        method="highs",
    )
    if res.status == 2:
        raise InfeasibleProblemError(f"HiGHS reports infeasible: {res.message}")
    if res.status == 3:
        raise UnboundedProblemError(f"HiGHS reports unbounded: {res.message}")
    if not res.success:
        raise SolverError(f"HiGHS failed: {res.message}")
    return LPResult(x=np.asarray(res.x), objective=float(res.fun), backend="scipy")


def _solve_own(
    c: FloatArray,
    A_ub: FloatArray | None,
    b_ub: FloatArray | None,
    A_eq: FloatArray | None,
    b_eq: FloatArray | None,
    lo: FloatArray,
    hi: FloatArray,
) -> LPResult:
    n = c.shape[0]
    rows_eq = 0 if A_eq is None else np.asarray(A_eq).shape[0]
    rows_ub = 0 if A_ub is None else np.asarray(A_ub).shape[0]

    blocks = []
    rhs_parts = []
    if rows_eq:
        A_eq_arr = np.asarray(A_eq, dtype=np.float64)
        if A_eq_arr.shape[1] != n:
            raise ConfigurationError("A_eq column count does not match c")
        blocks.append(np.hstack([A_eq_arr, np.zeros((rows_eq, rows_ub))]))
        rhs_parts.append(np.asarray(b_eq, dtype=np.float64))
    if rows_ub:
        A_ub_arr = np.asarray(A_ub, dtype=np.float64)
        if A_ub_arr.shape[1] != n:
            raise ConfigurationError("A_ub column count does not match c")
        blocks.append(np.hstack([A_ub_arr, np.eye(rows_ub)]))
        rhs_parts.append(np.asarray(b_ub, dtype=np.float64))
    if not blocks:
        # Pure box problem: each variable independently at its cheaper bound.
        x = np.where(c >= 0, lo, hi)
        if np.any(~np.isfinite(x)):
            raise UnboundedProblemError("box LP unbounded (negative cost, infinite bound)")
        return LPResult(x=x, objective=float(c @ x), backend="simplex")

    A_full = np.vstack(blocks)
    b_full = np.concatenate(rhs_parts)
    c_full = np.concatenate([c, np.zeros(rows_ub)])
    lo_full = np.concatenate([lo, np.zeros(rows_ub)])
    hi_full = np.concatenate([hi, np.full(rows_ub, np.inf)])

    result = solve_simplex(c_full, A_full, b_full, lo_full, hi_full)
    return LPResult(x=result.x[:n], objective=result.objective, backend="simplex")

"""Step-size rules for the dual subgradient ascent of Algorithm 1.

The paper updates the multipliers by ``mu <- [mu + delta_l * g_l]^+`` with
the diminishing step ``delta_l = 1 / (1 + alpha * l)`` (Eqs. 15-16) and
notes that other subgradient rules work equally well; this module provides
the paper's rule plus two standard alternatives, all behind a common
callable signature ``rule(iteration) -> step``.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.exceptions import ConfigurationError
from repro.obs.convergence import ConvergenceRecorder
from repro.types import FloatArray

#: Column set every dual-ascent convergence trace carries (sorted; see
#: :func:`dual_ascent_recorder`).
DUAL_ASCENT_COLUMNS = (
    "gap",
    "lower_bound",
    "step",
    "subgrad_norm",
    "upper_bound",
)


def dual_ascent_recorder() -> ConvergenceRecorder:
    """A convergence recorder for the dual subgradient ascent loop.

    One row per outer iteration of Algorithm 1 with the columns in
    :data:`DUAL_ASCENT_COLUMNS`: the certified bounds, the relative gap,
    the step length actually taken (0 on the terminating iteration), and
    the subgradient norm ``||y - x||_2``.
    """
    return ConvergenceRecorder("subgradient")

#: A step-size schedule: iteration index (1-based) to step length.
StepRule = Callable[[int], float]


def paper_step_rule(alpha: float = 0.05) -> StepRule:
    """The paper's Eq. 16: ``delta_l = 1 / (1 + alpha * l)``.

    ``alpha`` controls how fast the step decays; the paper leaves it as a
    tunable parameter.
    """
    if alpha < 0:
        raise ConfigurationError(f"alpha must be >= 0, got {alpha}")

    def rule(iteration: int) -> float:
        return 1.0 / (1.0 + alpha * iteration)

    return rule


def constant_step_rule(step: float) -> StepRule:
    """Constant step ``delta_l = step`` (converges to a neighbourhood)."""
    if step <= 0:
        raise ConfigurationError(f"step must be positive, got {step}")

    def rule(iteration: int) -> float:
        return step

    return rule


def sqrt_step_rule(scale: float = 1.0) -> StepRule:
    """Classic non-summable, square-summable rule ``delta_l = scale / sqrt(l)``."""
    if scale <= 0:
        raise ConfigurationError(f"scale must be positive, got {scale}")

    def rule(iteration: int) -> float:
        return scale / np.sqrt(iteration)

    return rule


def project_nonnegative(mu: FloatArray) -> FloatArray:
    """The ``[.]^+`` projection of Eq. 15 onto the feasible multiplier set."""
    return np.maximum(mu, 0.0)


def subgradient_step(
    mu: FloatArray, subgrad: FloatArray, step: float
) -> FloatArray:
    """One dual ascent step ``[mu + step * subgrad]^+`` (Eq. 15)."""
    if step < 0:
        raise ConfigurationError(f"step must be >= 0, got {step}")
    return project_nonnegative(mu + step * subgrad)

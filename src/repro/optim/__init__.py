"""From-scratch optimization substrate.

The paper's algorithms need three numerical workhorses, all implemented
here without external solver dependencies:

- projected-gradient machinery for the strictly convex load-balancing
  subproblem ``P2`` (:mod:`~repro.optim.projection`, :mod:`~repro.optim.fista`),
- linear programming for the totally unimodular caching subproblem ``P1``
  (:mod:`~repro.optim.simplex` — the paper's stated method — with a
  scipy/HiGHS cross-check backend in :mod:`~repro.optim.linprog`, and an
  equivalent min-cost-flow solver in :mod:`~repro.optim.mincostflow`),
- dual subgradient ascent for Algorithm 1's outer loop
  (:mod:`~repro.optim.subgradient`).

Both iterative loops accept an anytime :class:`~repro.optim.budget.SolveBudget`
(wall-time / iteration caps with best-feasible-iterate fallback), which the
fault-degradation path uses to guarantee a degraded slot never stalls the
horizon.

:mod:`~repro.optim.tum` provides the total-unimodularity utilities behind
Theorem 1, and :mod:`~repro.optim.knapsack` the exact greedy solver for the
load-balancing problem once the cache is fixed.
"""

from repro.optim.budget import SolveBudget
from repro.optim.fista import FistaResult, minimize_fista
from repro.optim.knapsack import fractional_knapsack_offload
from repro.optim.linprog import LPResult, solve_lp
from repro.optim.mincostflow import MinCostFlow
from repro.optim.projection import (
    project_box,
    project_capped_simplex,
    project_halfspace_box,
)
from repro.optim.simplex import SimplexResult, solve_simplex
from repro.optim.subgradient import StepRule, paper_step_rule, constant_step_rule, sqrt_step_rule
from repro.optim.tum import is_interval_matrix, is_totally_unimodular

__all__ = [
    "FistaResult",
    "LPResult",
    "MinCostFlow",
    "SimplexResult",
    "SolveBudget",
    "StepRule",
    "constant_step_rule",
    "fractional_knapsack_offload",
    "is_interval_matrix",
    "is_totally_unimodular",
    "minimize_fista",
    "paper_step_rule",
    "project_box",
    "project_capped_simplex",
    "project_halfspace_box",
    "solve_lp",
    "solve_simplex",
    "sqrt_step_rule",
]

"""Bounded-variable primal simplex method, from scratch.

Solves linear programs in the computational form

    min  c . x    s.t.  A x = b,   lo <= x <= hi,

with possibly infinite upper bounds. This is the solver the paper names for
the caching subproblem ``P1`` ("simplex method is applied in this paper",
Section III-B); :mod:`repro.optim.linprog` wraps it behind a common
interface next to scipy's HiGHS for cross-checking.

Implementation notes
--------------------
- Two-phase method: phase 1 drives artificial variables (one per row) to
  zero; phase 2 optimizes the true objective with artificials fixed at 0.
- Bounded-variable pivoting: nonbasic variables rest at a finite bound and
  a pivot may be a *bound flip* (the entering variable travels from one of
  its bounds to the other without a basis change).
- Dantzig pricing with an automatic switch to Bland's rule after a stall,
  which guarantees termination in the presence of degeneracy.
- The basis system is re-solved densely each iteration; problem sizes in
  this library (hundreds to a few thousand variables) keep this fast and
  numerically transparent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import (
    ConfigurationError,
    InfeasibleProblemError,
    SolverError,
    UnboundedProblemError,
)
from repro.types import FloatArray

_AT_LOWER = 0
_AT_UPPER = 1
_BASIC = 2

_FEAS_TOL = 1e-8
_OPT_TOL = 1e-9
_PIVOT_TOL = 1e-10


@dataclass(frozen=True)
class SimplexResult:
    """Solution of a bounded-variable LP.

    Attributes
    ----------
    x:
        Optimal primal point.
    objective:
        Optimal value ``c . x``.
    iterations:
        Total simplex pivots across both phases.
    dual:
        Row duals ``y`` (Lagrange multipliers of ``A x = b``) at optimality.
    """

    x: FloatArray
    objective: float
    iterations: int
    dual: FloatArray


class _Tableau:
    """Mutable state of one simplex run (one phase)."""

    def __init__(
        self,
        A: FloatArray,
        b: FloatArray,
        c: FloatArray,
        lo: FloatArray,
        hi: FloatArray,
        basis: list[int],
        status: np.ndarray,
        values: FloatArray,
    ) -> None:
        self.A = A
        self.b = b
        self.c = c
        self.lo = lo
        self.hi = hi
        self.basis = basis
        self.status = status
        self.values = values
        self.iterations = 0
        self.duals = np.zeros(A.shape[0])

    def _refresh_basics(self) -> None:
        """Recompute basic values from the nonbasic rest points."""
        m, _ = self.A.shape
        nonbasic_mask = self.status != _BASIC
        rhs = self.b - self.A[:, nonbasic_mask] @ self.values[nonbasic_mask]
        B = self.A[:, self.basis]
        try:
            xb = np.linalg.solve(B, rhs)
        except np.linalg.LinAlgError as exc:  # pragma: no cover - guarded by pivots
            raise SolverError("singular basis matrix") from exc
        self.values[self.basis] = xb

    def run(self, *, max_iter: int) -> None:
        m, n = self.A.shape
        stall = 0
        last_obj = np.inf
        for _ in range(max_iter):
            self._refresh_basics()
            B = self.A[:, self.basis]
            y = np.linalg.solve(B.T, self.c[self.basis])
            self.duals = y
            reduced = self.c - self.A.T @ y

            obj = float(self.c @ self.values)
            if obj < last_obj - 1e-12 * max(1.0, abs(last_obj)):
                stall = 0
            else:
                stall += 1
            last_obj = obj
            use_bland = stall > 2 * (m + n)

            entering, direction = self._pick_entering(reduced, use_bland)
            if entering is None:
                return
            self._pivot(entering, direction)
            self.iterations += 1
        raise SolverError(f"simplex exceeded {max_iter} iterations")

    def _pick_entering(
        self, reduced: FloatArray, use_bland: bool
    ) -> tuple[int | None, float]:
        best_j: int | None = None
        best_score = _OPT_TOL
        best_dir = 0.0
        for j in range(self.A.shape[1]):
            s = self.status[j]
            if s == _BASIC:
                continue
            d = reduced[j]
            if s == _AT_LOWER and d < -_OPT_TOL and self.hi[j] > self.lo[j]:
                score = -d
                direction = 1.0
            elif s == _AT_UPPER and d > _OPT_TOL and self.hi[j] > self.lo[j]:
                score = d
                direction = -1.0
            else:
                continue
            if use_bland:
                return j, direction
            if score > best_score:
                best_score = score
                best_j = j
                best_dir = direction
        return best_j, best_dir

    def _pivot(self, j: int, direction: float) -> None:
        B = self.A[:, self.basis]
        d = np.linalg.solve(B, self.A[:, j])
        # Entering variable moves by ``direction * t``; basic variable i
        # moves by ``-direction * t * d[i]``.
        t_max = self.hi[j] - self.lo[j]
        leaving: int | None = None
        leaving_to_upper = False
        for i, var in enumerate(self.basis):
            delta = -direction * d[i]
            if delta > _PIVOT_TOL:
                room = self.hi[var] - self.values[var]
                limit = room / delta
                if limit < t_max - 1e-12:
                    t_max, leaving, leaving_to_upper = limit, i, True
            elif delta < -_PIVOT_TOL:
                room = self.values[var] - self.lo[var]
                limit = room / (-delta)
                if limit < t_max - 1e-12:
                    t_max, leaving, leaving_to_upper = limit, i, False
        if not np.isfinite(t_max):
            raise UnboundedProblemError("LP is unbounded below")
        t_max = max(t_max, 0.0)

        # Apply the move.
        self.values[j] += direction * t_max
        for i, var in enumerate(self.basis):
            self.values[var] -= direction * t_max * d[i]

        if leaving is None:
            # Bound flip: entering variable reached its opposite bound.
            self.status[j] = _AT_UPPER if direction > 0 else _AT_LOWER
            self.values[j] = self.hi[j] if direction > 0 else self.lo[j]
            return

        out_var = self.basis[leaving]
        self.status[out_var] = _AT_UPPER if leaving_to_upper else _AT_LOWER
        self.values[out_var] = self.hi[out_var] if leaving_to_upper else self.lo[out_var]
        self.basis[leaving] = j
        self.status[j] = _BASIC


def solve_simplex(
    c: FloatArray,
    A_eq: FloatArray,
    b_eq: FloatArray,
    lo: FloatArray,
    hi: FloatArray,
    *,
    max_iter: int = 50_000,
) -> SimplexResult:
    """Solve ``min c.x  s.t.  A_eq x = b_eq, lo <= x <= hi``.

    Raises
    ------
    InfeasibleProblemError
        When phase 1 cannot drive the artificials to zero.
    UnboundedProblemError
        When the objective is unbounded over the feasible set.
    """
    c = np.asarray(c, dtype=np.float64)
    A = np.asarray(A_eq, dtype=np.float64)
    b = np.asarray(b_eq, dtype=np.float64)
    lo = np.asarray(lo, dtype=np.float64)
    hi = np.asarray(hi, dtype=np.float64)
    m, n = A.shape
    if c.shape != (n,) or b.shape != (m,) or lo.shape != (n,) or hi.shape != (n,):
        raise ConfigurationError("inconsistent LP dimensions")
    if np.any(lo > hi + 1e-12):
        raise InfeasibleProblemError("some variable has lo > hi")
    if not np.all(np.isfinite(lo)):
        raise ConfigurationError("this solver requires finite lower bounds")

    # Rest nonbasic variables at their (finite) lower bound.
    rest = lo.copy()
    residual = b - A @ rest

    # Artificial columns: +/-1 so artificial values start non-negative.
    art_sign = np.where(residual >= 0, 1.0, -1.0)
    A1 = np.hstack([A, np.diag(art_sign)])
    lo1 = np.concatenate([lo, np.zeros(m)])
    hi1 = np.concatenate([hi, np.full(m, np.inf)])
    c1 = np.concatenate([np.zeros(n), np.ones(m)])
    values = np.concatenate([rest, np.abs(residual)])
    status = np.concatenate(
        [np.full(n, _AT_LOWER, dtype=np.int8), np.full(m, _BASIC, dtype=np.int8)]
    )
    basis = list(range(n, n + m))

    phase1 = _Tableau(A1, b, c1, lo1, hi1, basis, status, values)
    phase1.run(max_iter=max_iter)
    infeas = float(c1 @ phase1.values)
    if infeas > _FEAS_TOL * max(1.0, float(np.abs(b).sum())):
        raise InfeasibleProblemError(f"LP infeasible (phase-1 residual {infeas:.3e})")

    # Pin artificials to zero for phase 2 (keeps redundant-row artificials
    # harmlessly in the basis at value 0).
    hi1 = np.concatenate([hi, np.zeros(m)])
    phase1.values[n:] = np.clip(phase1.values[n:], 0.0, 0.0)
    c2 = np.concatenate([c, np.zeros(m)])
    phase2 = _Tableau(
        A1, b, c2, lo1, hi1, phase1.basis, phase1.status, phase1.values
    )
    phase2.run(max_iter=max_iter)

    x = phase2.values[:n].copy()
    return SimplexResult(
        x=x,
        objective=float(c @ x),
        iterations=phase1.iterations + phase2.iterations,
        dual=phase2.duals.copy(),
    )

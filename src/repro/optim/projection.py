"""Euclidean projections onto the feasible sets of the paper's subproblems.

The load-balancing subproblem ``P2`` is solved per SBS and slot over the
set ``{y : lo <= y <= hi, a . y <= budget}`` (box plus one weighted
halfspace — constraint (2) of the paper with the box (11)/(3)). Its
Euclidean projection reduces, by Lagrangian duality, to a one-dimensional
root-finding problem over the halfspace multiplier, solved here by
bisection to machine-level accuracy.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError, InfeasibleProblemError
from repro.types import FloatArray


def project_box(v: FloatArray, lo: FloatArray | float, hi: FloatArray | float) -> FloatArray:
    """Project ``v`` onto the box ``[lo, hi]`` elementwise.

    Raises when the box is empty (some ``lo > hi``).
    """
    lo_arr = np.broadcast_to(np.asarray(lo, dtype=np.float64), v.shape)
    hi_arr = np.broadcast_to(np.asarray(hi, dtype=np.float64), v.shape)
    if np.any(lo_arr > hi_arr + 1e-12):
        raise InfeasibleProblemError("empty box: some lower bound exceeds upper bound")
    return np.clip(v, lo_arr, hi_arr)


def project_halfspace_box(
    v: FloatArray,
    a: FloatArray,
    budget: float,
    lo: FloatArray | float = 0.0,
    hi: FloatArray | float = 1.0,
    *,
    tol: float = 1e-12,
    max_iter: int = 200,
) -> FloatArray:
    """Project ``v`` onto ``{y : lo <= y <= hi, a . y <= budget}`` with ``a >= 0``.

    The projection is ``clip(v - theta * a, lo, hi)`` for the smallest
    ``theta >= 0`` making the budget constraint hold; ``theta`` is found by
    bisection on the monotone non-increasing map
    ``theta -> a . clip(v - theta * a, lo, hi)``.

    Raises :class:`InfeasibleProblemError` when even the box's cheapest
    point violates the budget (i.e. ``a . lo > budget``).
    """
    a = np.asarray(a, dtype=np.float64)
    if a.shape != v.shape:
        raise ConfigurationError(f"a has shape {a.shape}, expected {v.shape}")
    if np.any(a < 0):
        raise ConfigurationError("halfspace weights must be non-negative")
    lo_arr = np.broadcast_to(np.asarray(lo, dtype=np.float64), v.shape)
    hi_arr = np.broadcast_to(np.asarray(hi, dtype=np.float64), v.shape)

    base = project_box(v, lo_arr, hi_arr)
    if float(a @ base) <= budget + tol:
        return base

    floor_usage = float(a @ lo_arr)
    if floor_usage > budget + 1e-9:
        raise InfeasibleProblemError(
            f"halfspace budget {budget} unreachable: box floor already uses {floor_usage}"
        )

    def usage(theta: float) -> float:
        return float(a @ np.clip(v - theta * a, lo_arr, hi_arr))

    theta_lo, theta_hi = 0.0, 1.0
    while usage(theta_hi) > budget and theta_hi < 1e18:
        theta_lo = theta_hi
        theta_hi *= 2.0
    for _ in range(max_iter):
        mid = 0.5 * (theta_lo + theta_hi)
        if usage(mid) > budget:
            theta_lo = mid
        else:
            theta_hi = mid
        if theta_hi - theta_lo <= tol * max(1.0, theta_hi):
            break
    return np.clip(v - theta_hi * a, lo_arr, hi_arr)


def project_halfspace_box_batch(
    v: FloatArray,
    a: FloatArray,
    budgets: FloatArray,
    lo: float = 0.0,
    hi: float = 1.0,
    *,
    iterations: int = 60,
) -> FloatArray:
    """Batched :func:`project_halfspace_box` over leading blocks.

    ``v`` and ``a`` have shape ``(B, d)`` (``a`` may also be ``(d,)`` and is
    broadcast); ``budgets`` has shape ``(B,)``. Block ``i`` is projected
    onto ``{y : lo <= y <= hi, a[i] . y <= budgets[i]}``. All blocks share
    one vectorized bisection loop, which is what makes the per-slot
    bandwidth projection affordable inside FISTA.
    """
    v = np.asarray(v, dtype=np.float64)
    if v.ndim != 2:
        raise ConfigurationError(f"expected (blocks, dim) array, got shape {v.shape}")
    a = np.broadcast_to(np.asarray(a, dtype=np.float64), v.shape)
    budgets = np.asarray(budgets, dtype=np.float64)
    if budgets.shape != (v.shape[0],):
        raise ConfigurationError(
            f"budgets shape {budgets.shape} does not match {v.shape[0]} blocks"
        )
    if np.any(a < 0):
        raise ConfigurationError("halfspace weights must be non-negative")
    if lo > hi:
        raise InfeasibleProblemError("empty box: lo > hi")

    base = np.clip(v, lo, hi)
    usage = np.einsum("bd,bd->b", a, base)
    violated = usage > budgets + 1e-12
    if not np.any(violated):
        return base
    floor_usage = lo * a.sum(axis=1)
    if np.any(floor_usage[violated] > budgets[violated] + 1e-9):
        raise InfeasibleProblemError("some block's budget is unreachable")

    vv = v[violated]
    aa = a[violated]
    bb = budgets[violated]

    def block_usage(theta: FloatArray) -> FloatArray:
        y = np.clip(vv - theta[:, None] * aa, lo, hi)
        return np.einsum("bd,bd->b", aa, y)

    theta_lo = np.zeros(vv.shape[0])
    theta_hi = np.ones(vv.shape[0])
    for _ in range(64):
        over = block_usage(theta_hi) > bb
        if not np.any(over):
            break
        theta_lo = np.where(over, theta_hi, theta_lo)
        theta_hi = np.where(over, theta_hi * 2.0, theta_hi)
    for _ in range(iterations):
        mid = 0.5 * (theta_lo + theta_hi)
        over = block_usage(mid) > bb
        theta_lo = np.where(over, mid, theta_lo)
        theta_hi = np.where(over, theta_hi, mid)
    out = base
    out[violated] = np.clip(vv - theta_hi[:, None] * aa, lo, hi)
    return out


def project_capped_simplex(
    v: FloatArray,
    total: float,
    cap: FloatArray | float = 1.0,
    *,
    tol: float = 1e-12,
    max_iter: int = 200,
) -> FloatArray:
    """Project ``v`` onto ``{x : 0 <= x <= cap, sum(x) = total}``.

    Used for relaxed caching iterates (capacity constraint (1) with the
    unit box). Solved by bisection on the shift ``tau`` in
    ``clip(v - tau, 0, cap)``, whose sum is monotone in ``tau``.
    """
    cap_arr = np.broadcast_to(np.asarray(cap, dtype=np.float64), v.shape)
    if np.any(cap_arr < 0):
        raise ConfigurationError("caps must be non-negative")
    reachable = float(cap_arr.sum())
    if total < -tol or total > reachable + 1e-9:
        raise InfeasibleProblemError(
            f"target sum {total} outside reachable range [0, {reachable}]"
        )
    total = min(max(total, 0.0), reachable)

    def mass(tau: float) -> float:
        return float(np.clip(v - tau, 0.0, cap_arr).sum())

    tau_lo = float(v.min() - cap_arr.max() - 1.0)
    tau_hi = float(v.max() + 1.0)
    for _ in range(max_iter):
        mid = 0.5 * (tau_lo + tau_hi)
        if mass(mid) > total:
            tau_lo = mid
        else:
            tau_hi = mid
        if tau_hi - tau_lo <= tol * max(1.0, abs(tau_hi)):
            break
    return np.clip(v - 0.5 * (tau_lo + tau_hi), 0.0, cap_arr)

"""Euclidean projections onto the feasible sets of the paper's subproblems.

The load-balancing subproblem ``P2`` is solved per SBS and slot over the
set ``{y : lo <= y <= hi, a . y <= budget}`` (box plus one weighted
halfspace — constraint (2) of the paper with the box (11)/(3)). Its
Euclidean projection reduces, by Lagrangian duality, to a one-dimensional
root-finding problem over the halfspace multiplier ``theta``: the
projected point is ``clip(v - theta a, lo, hi)`` and the budget usage of
that point is a continuous, piecewise-linear, non-increasing function of
``theta``. The batched operators solve for ``theta`` **exactly** — one
stable sort of the 2d clip breakpoints per row, prefix sums of the
per-segment linear coefficients, and a vectorized count to locate the
crossing segment (mirroring the parametric bandwidth-bound water-fill of
:mod:`repro.optim.waterfill`, DESIGN.md §7). The historical bisection is
kept behind ``closed_form=False`` as the A/B reference; the scalar
:func:`project_halfspace_box` stays a bisection because its callers are
not hot.
"""

from __future__ import annotations

import numpy as np

from repro.config import resolved_bw_closed_form
from repro.exceptions import ConfigurationError, InfeasibleProblemError
from repro.types import FloatArray


def project_box(v: FloatArray, lo: FloatArray | float, hi: FloatArray | float) -> FloatArray:
    """Project ``v`` onto the box ``[lo, hi]`` elementwise.

    Raises when the box is empty (some ``lo > hi``).
    """
    lo_arr = np.broadcast_to(np.asarray(lo, dtype=np.float64), v.shape)
    hi_arr = np.broadcast_to(np.asarray(hi, dtype=np.float64), v.shape)
    if np.any(lo_arr > hi_arr + 1e-12):
        raise InfeasibleProblemError("empty box: some lower bound exceeds upper bound")
    return np.clip(v, lo_arr, hi_arr)


def project_halfspace_box(
    v: FloatArray,
    a: FloatArray,
    budget: float,
    lo: FloatArray | float = 0.0,
    hi: FloatArray | float = 1.0,
    *,
    tol: float = 1e-12,
    max_iter: int = 200,
) -> FloatArray:
    """Project ``v`` onto ``{y : lo <= y <= hi, a . y <= budget}`` with ``a >= 0``.

    The projection is ``clip(v - theta * a, lo, hi)`` for the smallest
    ``theta >= 0`` making the budget constraint hold; ``theta`` is found by
    bisection on the monotone non-increasing map
    ``theta -> a . clip(v - theta * a, lo, hi)``.

    Raises :class:`InfeasibleProblemError` when even the box's cheapest
    point violates the budget (i.e. ``a . lo > budget``).
    """
    a = np.asarray(a, dtype=np.float64)
    if a.shape != v.shape:
        raise ConfigurationError(f"a has shape {a.shape}, expected {v.shape}")
    if np.any(a < 0):
        raise ConfigurationError("halfspace weights must be non-negative")
    lo_arr = np.broadcast_to(np.asarray(lo, dtype=np.float64), v.shape)
    hi_arr = np.broadcast_to(np.asarray(hi, dtype=np.float64), v.shape)

    base = project_box(v, lo_arr, hi_arr)
    if float(a @ base) <= budget + tol:
        return base

    floor_usage = float(a @ lo_arr)
    if floor_usage > budget + 1e-9:
        raise InfeasibleProblemError(
            f"halfspace budget {budget} unreachable: box floor already uses {floor_usage}"
        )

    def usage(theta: float) -> float:
        return float(a @ np.clip(v - theta * a, lo_arr, hi_arr))

    theta_lo, theta_hi = 0.0, 1.0
    while usage(theta_hi) > budget and theta_hi < 1e18:
        theta_lo = theta_hi
        theta_hi *= 2.0
    for _ in range(max_iter):
        mid = 0.5 * (theta_lo + theta_hi)
        if usage(mid) > budget:
            theta_lo = mid
        else:
            theta_hi = mid
        if theta_hi - theta_lo <= tol * max(1.0, theta_hi):
            break
    return np.clip(v - theta_hi * a, lo_arr, hi_arr)


def halfspace_theta_exact(
    vv: FloatArray,
    aa: FloatArray,
    bb: FloatArray,
    lo: FloatArray | float,
    hi: FloatArray | float,
) -> FloatArray:
    """Exact halfspace multiplier for rows whose budget constraint binds.

    For each row, returns the smallest ``theta >= 0`` such that
    ``aa . clip(vv - theta aa, lo, hi) <= bb``. The usage map
    ``U(theta) = sum_j a_j clip(v_j - theta a_j, lo_j, hi_j)`` is
    continuous, piecewise linear and non-increasing; coordinate ``j``
    (with ``a_j > 0``) leaves its ``hi`` clip at ``theta = (v_j - hi_j) /
    a_j`` and enters its ``lo`` clip at ``theta = (v_j - lo_j) / a_j``,
    so between breakpoints ``U(theta) = C - Q theta`` with ``Q`` the sum
    of ``a_j^2`` over the unclipped coordinates. One **stable** argsort
    of the 2d breakpoints per row plus prefix sums of the segment deltas
    yields every ``(C_k, Q_k)``; counting the breakpoints whose usage
    still exceeds ``bb`` locates the crossing segment and the root is
    read off exactly. The stable sort makes tie order follow the
    original coordinate order, so zero-padded and compressed layouts of
    the same row produce bit-identical projections.

    Callers must pre-filter to violated rows (``U(0) > bb``); coordinates
    with ``a_j == 0`` never move and contribute nothing to the usage.
    """
    B, d = vv.shape
    lo_b = np.broadcast_to(np.asarray(lo, dtype=np.float64), vv.shape)
    hi_b = np.broadcast_to(np.asarray(hi, dtype=np.float64), vv.shape)
    pos = aa > 0.0
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        # Breakpoint "events" in theta; a_j == 0 coordinates park at +inf
        # with zero deltas, so padding columns are inert.
        th_enter = np.where(pos, (vv - hi_b) / aa, np.inf)
        th_leave = np.where(pos, (vv - lo_b) / aa, np.inf)
        ev_th = np.concatenate([th_enter, th_leave], axis=1)
        av = np.where(pos, aa * vv, 0.0)
        dC = np.concatenate(
            [av - np.where(pos, aa * hi_b, 0.0), np.where(pos, aa * lo_b, 0.0) - av],
            axis=1,
        )
        aq = np.where(pos, aa * aa, 0.0)
        dQ = np.concatenate([aq, -aq], axis=1)
        order = np.argsort(ev_th, axis=1, kind="stable")
        ridx = np.arange(B)[:, None]
        th_s = ev_th[ridx, order]
        # C0 (all coordinates at their hi clip) must be a *sequential* sum:
        # np.sum's pairwise accumulation regroups when zero columns are
        # interleaved, which would break bit-identity between padded and
        # compressed layouts of the same rows. cumsum is sequential, so
        # inserted zeros are exact no-ops.
        C0 = np.cumsum(np.where(pos, aa * hi_b, 0.0), axis=1)[:, -1:]
        C = C0 + np.cumsum(dC[ridx, order], axis=1)
        # True Q is a sum of squares (>= 0 on every segment); clamp the
        # cancellation residue of the +/- prefix so the +inf tail events
        # evaluate to NaN / -inf below rather than +inf.
        Q = np.maximum(np.cumsum(dQ[ridx, order], axis=1), 0.0)
        # Usage at each breakpoint (evaluated with the right-segment
        # coefficients — U is continuous, so the side does not matter).
        # +inf tail events give -inf or NaN, neither of which counts.
        u_at = C - Q * th_s
        m = np.count_nonzero(u_at > bb[:, None], axis=1)
    seg = np.maximum(m - 1, 0)
    rows = np.arange(B)
    C_s, Q_s, th_c = C[rows, seg], Q[rows, seg], th_s[rows, seg]
    with np.errstate(divide="ignore", invalid="ignore"):
        theta = np.where(Q_s > 0.0, (C_s - bb) / Q_s, th_c)
    # m == 0 only for degenerate rows (all a_j == 0) that slipped past the
    # feasibility guard on tolerance; theta = 0 returns the plain clip.
    return np.maximum(np.where(m > 0, theta, 0.0), 0.0)


def project_halfspace_box_batch(
    v: FloatArray,
    a: FloatArray,
    budgets: FloatArray,
    lo: float = 0.0,
    hi: float = 1.0,
    *,
    iterations: int = 60,
    closed_form: bool | None = None,
) -> FloatArray:
    """Batched :func:`project_halfspace_box` over leading blocks.

    ``v`` and ``a`` have shape ``(B, d)`` (``a`` may also be ``(d,)`` and is
    broadcast); ``budgets`` has shape ``(B,)``. Block ``i`` is projected
    onto ``{y : lo <= y <= hi, a[i] . y <= budgets[i]}``. By default the
    binding blocks are solved exactly via
    :func:`halfspace_theta_exact`; ``closed_form`` (arg >
    ``RuntimeConfig`` > ``REPRO_BW_CLOSED_FORM`` > default on) selects
    the legacy vectorized bisection instead, which runs ``iterations``
    halving steps and is kept as the A/B reference.
    """
    v = np.asarray(v, dtype=np.float64)
    if v.ndim != 2:
        raise ConfigurationError(f"expected (blocks, dim) array, got shape {v.shape}")
    a = np.broadcast_to(np.asarray(a, dtype=np.float64), v.shape)
    budgets = np.asarray(budgets, dtype=np.float64)
    if budgets.shape != (v.shape[0],):
        raise ConfigurationError(
            f"budgets shape {budgets.shape} does not match {v.shape[0]} blocks"
        )
    if np.any(a < 0):
        raise ConfigurationError("halfspace weights must be non-negative")
    if lo > hi:
        raise InfeasibleProblemError("empty box: lo > hi")

    base = np.clip(v, lo, hi)
    usage = np.einsum("bd,bd->b", a, base)
    violated = usage > budgets + 1e-12
    if not np.any(violated):
        return base
    floor_usage = lo * a.sum(axis=1)
    if np.any(floor_usage[violated] > budgets[violated] + 1e-9):
        raise InfeasibleProblemError("some block's budget is unreachable")

    vv = v[violated]
    aa = a[violated]
    bb = budgets[violated]

    if resolved_bw_closed_form(None, closed_form):
        theta = halfspace_theta_exact(vv, aa, bb, lo, hi)
        out = base
        out[violated] = np.clip(vv - theta[:, None] * aa, lo, hi)
        return out

    def block_usage(theta: FloatArray) -> FloatArray:
        y = np.clip(vv - theta[:, None] * aa, lo, hi)
        return np.einsum("bd,bd->b", aa, y)

    theta_lo = np.zeros(vv.shape[0])
    theta_hi = np.ones(vv.shape[0])
    for _ in range(64):
        over = block_usage(theta_hi) > bb
        if not np.any(over):
            break
        theta_lo = np.where(over, theta_hi, theta_lo)
        theta_hi = np.where(over, theta_hi * 2.0, theta_hi)
    for _ in range(iterations):
        mid = 0.5 * (theta_lo + theta_hi)
        over = block_usage(mid) > bb
        theta_lo = np.where(over, mid, theta_lo)
        theta_hi = np.where(over, theta_hi, mid)
    out = base
    out[violated] = np.clip(vv - theta_hi[:, None] * aa, lo, hi)
    return out


def project_capped_simplex(
    v: FloatArray,
    total: float,
    cap: FloatArray | float = 1.0,
    *,
    tol: float = 1e-12,
    max_iter: int = 200,
) -> FloatArray:
    """Project ``v`` onto ``{x : 0 <= x <= cap, sum(x) = total}``.

    Used for relaxed caching iterates (capacity constraint (1) with the
    unit box). Solved by bisection on the shift ``tau`` in
    ``clip(v - tau, 0, cap)``, whose sum is monotone in ``tau``.
    """
    cap_arr = np.broadcast_to(np.asarray(cap, dtype=np.float64), v.shape)
    if np.any(cap_arr < 0):
        raise ConfigurationError("caps must be non-negative")
    reachable = float(cap_arr.sum())
    if total < -tol or total > reachable + 1e-9:
        raise InfeasibleProblemError(
            f"target sum {total} outside reachable range [0, {reachable}]"
        )
    total = min(max(total, 0.0), reachable)

    def mass(tau: float) -> float:
        return float(np.clip(v - tau, 0.0, cap_arr).sum())

    tau_lo = float(v.min() - cap_arr.max() - 1.0)
    tau_hi = float(v.max() + 1.0)
    for _ in range(max_iter):
        mid = 0.5 * (tau_lo + tau_hi)
        if mass(mid) > total:
            tau_lo = mid
        else:
            tau_hi = mid
        if tau_hi - tau_lo <= tol * max(1.0, abs(tau_hi)):
            break
    return np.clip(v - 0.5 * (tau_lo + tau_hi), 0.0, cap_arr)

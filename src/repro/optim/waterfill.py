"""Batched dual-water-level fill for the ``P2`` fast path.

:func:`waterfill_batch` solves the per-(SBS, slot) residual fixed point of
subproblem ``P2`` for a whole stack of rows at once: every row is one
(SBS, slot) pair, so a single call covers all ``N`` SBSs of a window
instead of one solve per SBS. The scalar loop path routes through the same
kernel one SBS at a time, and every reduction inside the kernel is either
elementwise or a sequential per-row scan — zero-padded tail coordinates
are exactly inert and rows never interact — so the batched and loop
layouts return bit-identical solutions regardless of how rows are stacked,
padded, or chunked.

Closed-form solve, bandwidth slack (the common case)
----------------------------------------------------
Each row minimizes ``s (W - sum omega alloc)^2 + sum slope alloc`` over
``0 <= alloc <= caps`` and ``sum alloc <= bw``. Item ``j`` enters the
optimal allocation when the residual ``r = W - u`` exceeds its threshold
``t_j = slope_j / (2 s omega_j)`` (the benefit ``2 s r omega_j`` beats the
price ``slope_j``). When the bandwidth constraint is slack, the KKT system
collapses to a one-dimensional fixed point over a *sorted threshold scan*:

* sort items by ``t_j`` once; prefix-sum their weighted capacities ``U_k``;
* the fixed point lies in segment ``k*`` — the largest ``k`` with
  ``t_(k) < W - U_k`` (both sequences are monotone, so ``k*`` is a count);
* if ``W - U_k* <= t_(k*+1)`` the solution is interior: the first ``k*``
  items at full capacity, residual ``r* = W - U_k*``;
* otherwise the line ``W - r`` crosses inside the jump at ``r* = t_(k*+1)``
  and the items tied at that threshold (``kappa = 0``, indifferent) split
  the remaining weighted volume ``W - r* - U_k*`` greedily in stable order.

Closed-form solve, bandwidth bound (:func:`_solve_bw_bound`)
------------------------------------------------------------
Rows whose slack-scan allocation exceeds the bandwidth historically fell
back to a 26-iteration bisection. They are now solved exactly as well, via
a parametric KKT enumeration. With a bandwidth multiplier ``theta >= 0``
the optimum fills every item whose benefit margin ``kappa_j(r) = 2 s r
omega_j - slope_j`` exceeds ``theta``, zeroes those below, and puts at
most one *partial* item exactly at ``theta``. ``P2`` rows carry at most
two distinct positive weights (one ``omega`` per MU class of the SBS —
``G <= 2`` after padding), so splitting the items into a high-weight and a
low-weight group, each sorted by ``slope`` (within a group the ``kappa``
order equals the slope order and is independent of ``r``), makes the
candidate set enumerable: a candidate is "the first ``i`` items of one
group at capacity, the other group greedily filled with the remaining
bandwidth, the marginal item partial". Every candidate spends the whole
bandwidth, so its fill volume collapses to ``u(i) = m_M bw + (m_F - m_M)
P_F[i]`` — monotone in the prefix sum ``P_F[i]`` — and the KKT residual
``f(i) = kappa_excl(i) - theta(i)`` (first excluded full-group item's
margin minus the marginal item's) is non-increasing in ``i``. A
vectorized binary search over ``i`` — O(A log J) gather/compare steps
instead of any O(A J) candidate table — brackets the sign change, and
the exact KKT conditions (``theta >= 0``; every filled item's ``kappa >=
theta``; every zeroed item's ``kappa <= theta``) are then certified on a
small window of candidates around it, which by convexity certifies
*global* optimality — no fixed-point iteration, no bracketing error. One
shared argsort by slope, two cumsum-positioned group compactions, prefix
scans, and two binary searches replace up to 26 fresh greedy fills.

Fallback criteria: rows with three or more distinct positive weights
among cap-positive items (never produced by ``P2``, but the kernel is
general), rows where an item with non-positive weight could become
eligible (negative slope), and degenerate cross-group ``kappa`` ties
whose optimum needs two simultaneously-partial items (a measure-zero
coincidence under continuous inputs: it requires ``2 s r (omega_H -
omega_L) = slope_H - slope_L`` to hold exactly at the optimum) are routed
to the legacy bisection below. The counters ``p2_bw_bound_rows``,
``p2_bw_closed_form`` and ``p2_bisection_fallbacks`` (see
:mod:`repro.obs`) account for every bound row:
``p2_bw_closed_form + p2_bisection_fallbacks == p2_bw_bound_rows``.

Legacy bisection (A/B reference, and the fallback)
--------------------------------------------------
The greedy fill at residual ``r`` ranks items by ``kappa_j(r)`` and pours
bandwidth down the ranking; bisection finds ``W - u(r) = r``. The fill's
output depends on ``r`` only through the *state* (eligible set, sort
order), so the kernel stores the last state evaluated on each side of the
bracket; at each midpoint one gather plus two vectorized checks — the
``(key, index)`` pairs strictly increasing along the stored order (exactly
the output a stable argsort would produce; ``+inf`` runs are exempt
because their caps are zeroed) and the ``+inf`` pattern matching the
stored eligible-prefix length — prove the stored state is valid at the
midpoint, making ``u(mid)`` free. Since each ``kappa_j(r)`` is linear in
``r``, a state valid at both ends of a bracket is valid throughout it, so
a *cross-side* match certifies the fill is constant on the bracket and the
row settles immediately. Both mechanisms are bitwise-invisible;
``early_exit=False`` runs every iteration with fresh fills for A/B tests.
The bisection depth follows ``RuntimeConfig.bisection_iters``
(``REPRO_BISECTION_ITERS``, default 26); ``closed_form=False`` (or
``REPRO_BW_CLOSED_FORM=0``) demotes every bound row to this path for
cost-drift A/B runs. State arrays are allocated at the *compressed* width
of each fallback subset (columns with positive cap in some row), never at
the padded width.

Memory discipline
-----------------
Active rows are processed in chunks of roughly ``2^18`` matrix elements
(:data:`_CHUNK_ELEMS`). Every operation is row-wise, so chunking is
bitwise-invisible; it bounds the solver's transient state to a few MB
regardless of the stack size, where the historical kernel materialized
O(R x J) bracket-state arrays (two ``(R, J)`` intp arrays alone are
~320 MB at R=1000, J=20000).
"""

from __future__ import annotations

import numpy as np

from repro.config import resolved_bisection_iters, resolved_bw_closed_form
from repro.obs.recorder import inc
from repro.types import FloatArray, IntArray

_INF = np.inf

#: Row-chunk size for the active-row stages, in matrix elements. Chunks of
#: ``max(1, _CHUNK_ELEMS // J)`` rows keep per-stage temporaries at a few
#: MB each; all per-row math is chunk-invariant (bitwise).
_CHUNK_ELEMS = 1 << 18


def waterfill_batch(
    lam: FloatArray,
    caps: FloatArray,
    omega: FloatArray,
    mu: FloatArray,
    W: FloatArray,
    bandwidths: FloatArray,
    scale: float,
    *,
    group_ids: IntArray | None = None,
    early_exit: bool = True,
    closed_form: bool | None = None,
    bisection_iters: int | None = None,
) -> tuple[FloatArray, FloatArray]:
    """Solve the water-fill for a stack of independent rows.

    Parameters
    ----------
    lam, caps, omega, mu:
        Row-stacked ``(R, J)`` arrays: demand, routing caps, BS weights
        and multipliers per flattened (class, item) coordinate. Rows from
        SBSs with fewer coordinates are zero-padded (zero caps make the
        padding inert — bitwise, not just approximately).
    W:
        Offloadable weighted volume per row, shape ``(R,)``.
    bandwidths:
        SBS bandwidth per row, shape ``(R,)``.
    scale:
        Quadratic BS-cost scale.
    group_ids:
        Optional ``(R,)`` int labels tying rows to their SBS. The
        "no bisection needed" shortcut (all slopes zero) is decided per
        SBS over the whole window, so the batched kernel must apply it
        per group, not per row. ``None`` treats the whole batch as one
        group.
    early_exit:
        Enable the state-reuse fast path of the legacy bisection
        (bitwise-invisible; see module docstring).
    closed_form:
        Solve bandwidth-bound rows by the exact parametric path (see
        module docstring). ``None`` resolves via
        :func:`repro.config.resolved_bw_closed_form` (default on);
        ``False`` demotes every bound row to the legacy bisection.
    bisection_iters:
        Depth of the legacy bisection. ``None`` resolves via
        :func:`repro.config.resolved_bisection_iters` (default 26).

    Returns
    -------
    (alloc, u):
        Routed amounts ``(R, J)`` and offloaded weighted volume ``(R,)``.
    """
    R, J = lam.shape
    alloc_out = np.zeros_like(caps)
    u_out = np.zeros(R)
    if R == 0 or J == 0:
        return alloc_out, u_out

    # Columns with zero cap in every row are exactly inert: their
    # threshold is +inf, their weighted capacity contributes +0.0 to every
    # prefix scan, and their allocation is identically zero. Dropping them
    # up front is bitwise-invisible (stable sorts preserve the relative
    # order of the surviving columns) and shrinks every (rows, J) op —
    # typical caching instances route only the cached fraction of items.
    chunk = max(1, _CHUNK_ELEMS // J)
    col_any = np.zeros(J, dtype=bool)
    for s0 in range(0, R, chunk):
        col_any |= (caps[s0 : s0 + chunk] > 0).any(axis=0)
    keep_cols = np.flatnonzero(col_any)
    if keep_cols.size < J:
        alloc_c, u_out = waterfill_batch(
            np.ascontiguousarray(lam[:, keep_cols]),
            np.ascontiguousarray(caps[:, keep_cols]),
            np.ascontiguousarray(omega[:, keep_cols]),
            np.ascontiguousarray(mu[:, keep_cols]),
            W,
            bandwidths,
            scale,
            group_ids=group_ids,
            early_exit=early_exit,
            closed_form=closed_form,
            bisection_iters=bisection_iters,
        )
        alloc_out[:, keep_cols] = alloc_c
        return alloc_out, u_out

    two_s = 2.0 * scale
    cols = np.arange(J)

    def slope_of(rows: IntArray) -> FloatArray:
        lam_r = lam[rows]
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(lam_r > 0, mu[rows] / lam_r, _INF)

    def full_fill(
        rows: IntArray, r: FloatArray, *, with_alloc: bool, zero_slope: bool = False
    ) -> tuple[FloatArray | None, FloatArray]:
        om = omega[rows]
        cp = caps[rows]
        kappa = two_s * r[:, None] * om
        if not zero_slope:
            kappa -= slope_of(rows)
        eligible = (kappa > 0) & (cp > 0)
        key = np.where(eligible, -kappa, _INF)
        order = np.argsort(key, axis=1, kind="stable")
        ridx = np.arange(rows.size)[:, None]
        caps_sorted = np.where(eligible, cp, 0.0)[ridx, order]
        cum = np.cumsum(caps_sorted, axis=1)
        alloc_sorted = np.clip(
            bandwidths[rows, None] - (cum - caps_sorted), 0.0, caps_sorted
        )
        # Sequential scan instead of a blocked dot keeps the value
        # invariant to trailing zero padding.
        u = np.cumsum(alloc_sorted * om[ridx, order], axis=1)[:, -1]
        alloc = None
        if with_alloc:
            alloc = np.zeros_like(cp)
            alloc[ridx, order] = alloc_sorted
        return alloc, u

    # Per-SBS shortcut: when no item of the group carries a positive slope
    # with positive cap, the fill order and eligible set do not depend on
    # r and one bandwidth-capped pass at max(W, 1) is exact. This is the
    # fixed-cache oracle's hot path. (caps > 0 implies lam > 0, where
    # slope > 0 iff mu > 0 — no division needed for the test.)
    row_any = np.zeros(R, dtype=bool)
    for s0 in range(0, R, chunk):
        sl = slice(s0, s0 + chunk)
        row_any[sl] = ((mu[sl] > 0) & (caps[sl] > 0)).any(axis=1)
    if group_ids is None:
        bisect_rows = np.full(R, bool(row_any.any()))
    else:
        grp = np.zeros(int(group_ids.max()) + 1, dtype=bool)
        np.logical_or.at(grp, group_ids, row_any)
        bisect_rows = grp[group_ids]

    single = np.flatnonzero(~bisect_rows)
    if single.size:
        # Every cap-positive item of a single-pass group has slope exactly
        # zero, so the zero-slope fill is bit-identical and skips the
        # (R, J) division.
        alloc, u = full_fill(
            single, np.maximum(W[single], 1.0), with_alloc=True, zero_slope=True
        )
        assert alloc is not None
        alloc_out[single] = alloc
        u_out[single] = u

    act = np.flatnonzero(bisect_rows)
    if act.size == 0:
        return alloc_out, u_out

    use_closed = resolved_bw_closed_form(None, closed_form)
    iters = resolved_bisection_iters(None, bisection_iters)

    def bisect_rows_legacy(
        rows: IntArray,
        om_a: FloatArray,
        cp_a: FloatArray,
        sl_a: FloatArray,
        W_a: FloatArray,
        bw_a: FloatArray,
    ) -> None:
        """Legacy residual bisection over one subset of bound rows.

        State arrays live at the subset's compressed column width (columns
        with positive cap in some row) — dropping the rest is
        bitwise-invisible exactly as in the kernel-level compression —
        so the reference path never allocates O(rows x J) state.
        """
        kc = np.flatnonzero((cp_a > 0).any(axis=0))
        Jc = kc.size
        if Jc == 0:
            return  # nothing routable; alloc and u stay zero
        om_c = np.ascontiguousarray(om_a[:, kc])
        cp_c = np.ascontiguousarray(cp_a[:, kc])
        sl_c = np.ascontiguousarray(sl_a[:, kc])
        colc = np.arange(Jc)

        act_l = np.arange(rows.size)
        r_lo = np.zeros(rows.size)
        r_hi = np.maximum(W_a, 1e-12)
        A = rows.size
        # Stored fill state per bracket side: sort order, eligible-prefix
        # length, u, and a "present" flag. Invariant: a flagged side's
        # state is fill-valid at that side's current residual.
        ol = np.zeros((A, Jc), dtype=np.intp)
        oh = np.zeros((A, Jc), dtype=np.intp)
        ul = np.zeros(A)
        uh = np.zeros(A)
        ml = np.zeros(A, dtype=np.intp)
        mh = np.zeros(A, dtype=np.intp)
        hl = np.zeros(A, dtype=bool)
        hh = np.zeros(A, dtype=bool)

        def state_fill(
            order: IntArray, m: IntArray, cp: FloatArray, bw: FloatArray
        ) -> FloatArray:
            """Replay a stored fill state; returns the compressed allocation."""
            n = order.shape[0]
            sidx = np.arange(n)[:, None]
            caps_sorted = np.where(colc < m[:, None], cp[sidx, order], 0.0)
            cum = np.cumsum(caps_sorted, axis=1)
            alloc_sorted = np.clip(
                bw[:, None] - (cum - caps_sorted), 0.0, caps_sorted
            )
            alloc = np.zeros((n, Jc))
            alloc[sidx, order] = alloc_sorted
            return alloc

        def state_match(
            key: FloatArray, sub: IntArray, order: IntArray, m: IntArray
        ) -> IntArray:
            """Rows (subset indices into ``key``) whose key row provably
            sorts to the stored state.

            A stable argsort orders by ``(key, original index)``; the
            stored order reproduces it exactly when that pair sequence is
            strictly increasing along the stored order — keys
            non-decreasing and, in every run of equal finite keys, indices
            ascending. Runs of ``+inf`` are exempt (zero caps make their
            arrangement fill-invisible), but the ``+inf`` pattern must
            match the stored eligible-prefix length.
            """
            o = order[sub]
            seq = key[sub[:, None], o]
            a, b = seq[:, :-1], seq[:, 1:]
            ok = np.all(
                (b > a) | ((a == b) & ((o[:, 1:] > o[:, :-1]) | (a == _INF))),
                axis=1,
            )
            ok &= np.all((seq != _INF) == (colc < m[sub, None]), axis=1)
            return sub[ok]

        def fresh_fill_u(
            sub: IntArray, r: FloatArray
        ) -> tuple[FloatArray, FloatArray]:
            """Compressed fresh fill at residual ``r``; returns (alloc, u)."""
            kappa = two_s * r[:, None] * om_c[sub] - sl_c[sub]
            eligible = (kappa > 0) & (cp_c[sub] > 0)
            key = np.where(eligible, -kappa, _INF)
            order = np.argsort(key, axis=1, kind="stable")
            sidx = np.arange(sub.size)[:, None]
            caps_sorted = np.where(eligible, cp_c[sub], 0.0)[sidx, order]
            cum = np.cumsum(caps_sorted, axis=1)
            alloc_sorted = np.clip(
                bw_a[sub, None] - (cum - caps_sorted), 0.0, caps_sorted
            )
            u = np.cumsum(alloc_sorted * om_c[sub][sidx, order], axis=1)[:, -1]
            alloc = np.zeros((sub.size, Jc))
            alloc[sidx, order] = alloc_sorted
            return alloc, u

        om_b, cp_b, sl_b = om_c, cp_c, sl_c
        bw_b, W_b = bw_a, W_a

        def scatter(sub_rows: IntArray, alloc_c: FloatArray, u: FloatArray) -> None:
            alloc_out[sub_rows[:, None], kc[None, :]] = alloc_c
            u_out[sub_rows] = u

        for _ in range(iters):
            if act_l.size == 0:
                break
            A = act_l.size
            mid = 0.5 * (r_lo + r_hi)
            kappa = two_s * mid[:, None] * om_b - sl_b
            eligible = (kappa > 0) & (cp_b > 0)
            key = np.where(eligible, -kappa, _INF)
            u_m = np.empty(A)
            used = np.full(A, 2, dtype=np.int8)  # 0 = lo state, 1 = hi, 2 = fresh
            if early_exit:
                lo_rows = np.flatnonzero(hl)
                if lo_rows.size:
                    matched = state_match(key, lo_rows, ol, ml)
                    u_m[matched] = ul[matched]
                    used[matched] = 0
                rem = np.flatnonzero((used == 2) & hh)
                if rem.size:
                    matched = state_match(key, rem, oh, mh)
                    u_m[matched] = uh[matched]
                    used[matched] = 1
            fresh = np.flatnonzero(used == 2)
            if fresh.size:
                keyf = key[fresh]
                eligf = eligible[fresh]
                order_f = np.argsort(keyf, axis=1, kind="stable")
                fidx = np.arange(fresh.size)[:, None]
                caps_sorted = np.where(eligf, cp_b[fresh], 0.0)[fidx, order_f]
                cum_f = np.cumsum(caps_sorted, axis=1)
                alloc_sorted_f = np.clip(
                    bw_b[fresh, None] - (cum_f - caps_sorted), 0.0, caps_sorted
                )
                u_m[fresh] = np.cumsum(
                    alloc_sorted_f * om_b[fresh][fidx, order_f], axis=1
                )[:, -1]
                m_f = eligf.sum(axis=1)

            implied = W_b - u_m
            too_small = implied > mid  # G(r) > 0 -> root is to the right
            r_lo = np.where(too_small, mid, r_lo)
            r_hi = np.where(too_small, r_hi, mid)
            if not early_exit:
                continue

            # The updated side inherits the state used at the midpoint.
            cross_hi = (used == 1) & too_small
            if cross_hi.any():
                idx = np.flatnonzero(cross_hi)
                ol[idx] = oh[idx]
                ul[idx] = uh[idx]
                ml[idx] = mh[idx]
                hl[idx] = True
            cross_lo = (used == 0) & ~too_small
            if cross_lo.any():
                idx = np.flatnonzero(cross_lo)
                oh[idx] = ol[idx]
                uh[idx] = ul[idx]
                mh[idx] = ml[idx]
                hh[idx] = True
            if fresh.size:
                sel = too_small[fresh]
                tgt = fresh[sel]
                if tgt.size:
                    ol[tgt] = order_f[sel]
                    ul[tgt] = u_m[tgt]
                    ml[tgt] = m_f[sel]
                    hl[tgt] = True
                tgt = fresh[~sel]
                if tgt.size:
                    oh[tgt] = order_f[~sel]
                    uh[tgt] = u_m[tgt]
                    mh[tgt] = m_f[~sel]
                    hh[tgt] = True

            # Cross-side match -> the state is valid at both ends of the
            # new bracket, hence constant on it: the final gap is exactly
            # zero and the closing interpolation returns this state's
            # fill. Settle now.
            settle = cross_hi | cross_lo
            if settle.any():
                s = np.flatnonzero(settle)
                scatter(
                    rows[act_l[s]],
                    state_fill(ol[s], ml[s], cp_b[s], bw_b[s]),
                    ul[s],
                )
                kp = ~settle
                act_l = act_l[kp]
                om_b, cp_b, sl_b = om_b[kp], cp_b[kp], sl_b[kp]
                bw_b, W_b = bw_b[kp], W_b[kp]
                r_lo, r_hi = r_lo[kp], r_hi[kp]
                ol, oh, ul, uh = ol[kp], oh[kp], ul[kp], uh[kp]
                ml, mh, hl, hh = ml[kp], mh[kp], hl[kp], hh[kp]

        if act_l.size:
            A = act_l.size

            def endpoint(
                have: FloatArray,
                order: IntArray,
                u_s: FloatArray,
                m_s: IntArray,
                r_end: FloatArray,
            ) -> tuple[FloatArray, FloatArray]:
                alloc = np.empty((A, Jc))
                u = np.empty(A)
                hv = np.flatnonzero(have)
                if hv.size:
                    alloc[hv] = state_fill(order[hv], m_s[hv], cp_b[hv], bw_b[hv])
                    u[hv] = u_s[hv]
                nh = np.flatnonzero(~have)
                if nh.size:
                    al, uu = fresh_fill_u(act_l[nh], r_end[nh])
                    alloc[nh] = al
                    u[nh] = uu
                return alloc, u

            alloc_lo, u_lo = endpoint(hl, ol, ul, ml, r_lo)
            alloc_hi, u_hi = endpoint(hh, oh, uh, mh, r_hi)
            u_target = W_b - 0.5 * (r_lo + r_hi)
            gap = u_hi - u_lo
            with np.errstate(divide="ignore", invalid="ignore"):
                t = np.where(
                    gap > 1e-15, np.clip((u_target - u_lo) / gap, 0.0, 1.0), 0.0
                )
            scatter(
                rows[act_l],
                alloc_lo + t[:, None] * (alloc_hi - alloc_lo),
                u_lo + t * gap,
            )

    def process(rows: IntArray) -> tuple[int, int, int]:
        """Solve one chunk of active rows.

        Returns ``(bound, closed, fallback)`` row counts for the chunk.
        """
        om_a = omega[rows]
        cp_a = caps[rows]
        bw_a = bandwidths[rows]
        W_a = W[rows].astype(np.float64, copy=False)
        A = rows.size
        ridx = np.arange(A)[:, None]
        valid = (cp_a > 0) & (om_a > 0)
        # Fused threshold t_j = mu_j / (2 s lam_j omega_j): one division,
        # and valid entries have lam > 0 so the denominator is positive.
        with np.errstate(divide="ignore", invalid="ignore"):
            t_thr = np.where(valid, mu[rows] / (two_s * (lam[rows] * om_a)), _INF)
        ordt = np.argsort(t_thr, axis=1, kind="stable")
        tv = t_thr[ridx, ordt]
        cps = cp_a[ridx, ordt]
        cwv = np.where(valid, om_a * cp_a, 0.0)[ridx, ordt]
        cum = np.cumsum(cwv, axis=1)
        # k* = number of items strictly below the fixed-point residual.
        # Both tv (sorted) and W - cum (cumsum of non-negatives) are
        # monotone, so the comparison row is a prefix of Trues and the
        # count locates it.
        kstar = (tv < (W_a[:, None] - cum)).sum(axis=1)
        rows1 = np.arange(A)
        U_star = np.where(kstar > 0, cum[rows1, np.maximum(kstar - 1, 0)], 0.0)
        tv_next = np.where(kstar < J, tv[rows1, np.minimum(kstar, J - 1)], _INF)
        r_int = W_a - U_star
        interior = r_int <= tv_next
        u_a = np.where(interior, U_star, W_a - tv_next)

        alloc_sorted = np.where(cols < kstar[:, None], cps, 0.0)
        jrows = np.flatnonzero(~interior)
        if jrows.size:
            # The crossing sits inside the jump at r* = tv_next: items
            # tied at that threshold are indifferent (kappa = 0) and
            # greedily absorb the remaining weighted volume in stable
            # order. The budget never exceeds the tied run's weighted
            # capacity (otherwise k* would be larger), so items beyond
            # the run stay at zero.
            bu = ((W_a[jrows] - tv_next[jrows]) - U_star[jrows])[:, None]
            mass = cum[jrows] - U_star[jrows, None]
            # Ties can straddle the k* boundary (tv[k*-1] == tv[k*] with
            # the prefix condition flipping on cum alone). Straddling
            # items are first among the indifferent tied items in stable
            # order, so their full-caps prefix allocation is already
            # greedy-correct and their mass is inside U_star — the
            # residual budget is distributed over run positions >= k*
            # only.
            run = (tv[jrows] == tv_next[jrows, None]) & (cols >= kstar[jrows, None])
            cwj = cwv[jrows]
            run_full = run & (mass <= bu)
            boundary = run & (mass > bu) & ((mass - cwj) < bu)
            with np.errstate(divide="ignore", invalid="ignore"):
                part = np.clip(
                    (bu - (mass - cwj)) / om_a[jrows[:, None], ordt[jrows]],
                    0.0,
                    cps[jrows],
                )
            alloc_sorted[jrows] += np.where(
                run_full, cps[jrows], np.where(boundary, part, 0.0)
            )
            del bu, mass, run, cwj, run_full, boundary, part

        tot = alloc_sorted.sum(axis=1)
        closed = tot <= bw_a
        crows = np.flatnonzero(closed)
        if crows.size:
            allc = np.zeros((crows.size, J))
            allc[np.arange(crows.size)[:, None], ordt[crows]] = alloc_sorted[crows]
            alloc_out[rows[crows]] = allc
            u_out[rows[crows]] = u_a[crows]

        keep = ~closed
        brows = rows[keep]
        nb = brows.size
        if nb == 0:
            return 0, 0, 0
        # Release the slack-scan temporaries before the bound stage: the
        # chunk's peak live set — not any O(R x J) allocation — is what
        # the kernel's memory budget consists of now.
        del t_thr, ordt, tv, cps, cwv, cum, alloc_sorted, valid
        if keep.all():
            om_b, cp_b = om_a, cp_a
            bw_b, W_b = bw_a, W_a
        else:
            om_b, cp_b = om_a[keep], cp_a[keep]
            bw_b, W_b = bw_a[keep], W_a[keep]
        sl_b = slope_of(brows)
        n_cf = 0
        if use_closed:
            alloc_b, u_b, solved = _solve_bw_bound(
                om_b, cp_b, sl_b, W_b, bw_b, two_s
            )
            srows = np.flatnonzero(solved)
            if srows.size:
                alloc_out[brows[srows]] = alloc_b[srows]
                u_out[brows[srows]] = u_b[srows]
            n_cf = int(srows.size)
            if n_cf < nb:
                un = ~solved
                bisect_rows_legacy(
                    brows[un], om_b[un], cp_b[un], sl_b[un], W_b[un], bw_b[un]
                )
        else:
            bisect_rows_legacy(brows, om_b, cp_b, sl_b, W_b, bw_b)
        return nb, n_cf, nb - n_cf

    n_bound = n_closed = n_fallback = 0
    for start in range(0, act.size, chunk):
        nb, nc, nf = process(act[start : start + chunk])
        n_bound += nb
        n_closed += nc
        n_fallback += nf
    if n_bound:
        inc("p2_bw_bound_rows", float(n_bound))
    if n_closed:
        inc("p2_bw_closed_form", float(n_closed))
    if n_fallback:
        inc("p2_bisection_fallbacks", float(n_fallback))
    return alloc_out, u_out


def _solve_bw_bound(
    om: FloatArray,
    cp: FloatArray,
    slope: FloatArray,
    W: FloatArray,
    bw: FloatArray,
    two_s: float,
) -> tuple[FloatArray, FloatArray, np.ndarray]:
    """Exact allocation for bandwidth-bound rows (see module docstring).

    Parameters are row-stacked ``(A, J)`` arrays (weights, caps, slopes)
    plus per-row ``W``, ``bw`` and the fused cost scale ``2 s``. Returns
    ``(alloc, u, solved)`` where ``solved`` flags the rows certified
    optimal; unsolved rows (``G >= 3`` weights, stray eligible items with
    non-positive weight, or a degenerate cross-group tie) keep zero
    allocation and must be routed to the bisection by the caller.
    """
    A, J = cp.shape
    alloc = np.zeros((A, J))
    u = np.zeros(A)
    solved = np.zeros(A, dtype=bool)
    if A == 0 or J == 0:
        return alloc, u, solved

    # Items that can ever be routed: positive cap, positive weight, finite
    # slope (lam > 0). Items with infinite slope are never eligible
    # (kappa = -inf); items with non-positive weight are never eligible
    # unless their slope is negative — such "stray" rows are not
    # representable in the two-group structure and fall back.
    finite = np.isfinite(slope)
    valid = (cp > 0) & (om > 0) & finite
    stray = (cp > 0) & (om <= 0) & (slope < 0)
    with np.errstate(invalid="ignore"):
        m1 = np.max(np.where(valid, om, -_INF), axis=1)  # high weight
        m2 = np.min(np.where(valid, om, _INF), axis=1)  # low weight
    has = np.isfinite(m1) & (m1 > 0)
    m1s = np.where(has, m1, 1.0)
    m2s = np.where(has, m2, 1.0)
    third = valid & (om != m1s[:, None]) & (om != m2s[:, None])
    ok = has & ~stray.any(axis=1) & ~third.any(axis=1)
    if not ok.any():
        return alloc, u, solved

    ridx = np.arange(A)[:, None]
    rows1 = np.arange(A)
    # One argsort by slope shared by both groups. The sort MUST be
    # stable: slope ties (sparse ``mu`` rows tie at slope 0) then follow
    # the original column order of the valid items, which is invariant
    # under column compression — padding differs between the loop and
    # batched layouts, but compression only drops cap-0 (invalid)
    # columns, so the valid items' relative order is the same in every
    # layout and so is the tie-broken allocation. Introsort is faster
    # but permutes ties by padded-row content, which breaks the
    # batched-vs-loop bit-identity contract. (The slack scan's threshold
    # sort is *not* reused on purpose: t = slope / (2 s omega) agrees
    # with the slope order within a group only in real arithmetic —
    # rounding of the fused threshold can flip near-ties, and the KKT
    # certificate below checks only the marginal neighbours, so it
    # relies on the group slopes being exactly sorted.)
    ord0 = np.argsort(np.where(valid, slope, _INF), axis=1, kind="stable")
    slope_t = slope[ridx, ord0]
    cp_t = cp[ridx, ord0]
    om_t = om[ridx, ord0]
    valid_t = valid[ridx, ord0]
    gH = valid_t & (om_t == m1s[:, None])
    gL = valid_t & (om_t == m2s[:, None]) & (m2s < m1s)[:, None]
    del om_t, valid_t, finite, valid, stray, third
    Jm1 = J - 1

    def vgroup(g: np.ndarray) -> tuple:
        """Virtual group view over the shared slope order.

        Returns ``(idx, P, n_g)``: ``idx[:, k]`` is the sort-order
        position of each row's ``(k + 1)``-th group member (members keep
        their slope order; tail columns park the non-members), ``P`` is
        the running sum of group caps *in sort order* (so the prefix sum
        of the first ``k + 1`` members is ``P[idx[:, k]]``), and ``n_g``
        the member count. Nothing per-group is materialized beyond one
        int32 index row and one prefix row — group slopes and caps are
        gathered through ``idx`` on demand.
        """
        cnt = np.cumsum(g, axis=1, dtype=np.int32)
        n_g = cnt[:, -1].astype(np.intp)
        arange1 = np.arange(1, J + 1, dtype=np.int32)
        pos = np.where(g, cnt - 1, n_g[:, None].astype(np.int32) + (arange1 - cnt) - 1)
        idx = np.empty((A, J), dtype=np.int32)
        idx[ridx, pos] = np.arange(J, dtype=np.int32)
        P = np.cumsum(np.where(g, cp_t, 0.0), axis=1)
        return idx, P, n_g

    idxH, PH, nHr = vgroup(gH)
    idxL, PL, nLr = vgroup(gL)
    del gH, gL
    c1 = two_s * m1s
    c2 = two_s * m2s

    def make_family(
        idxF: np.ndarray,
        PF: FloatArray,
        nF: IntArray,
        idxM: np.ndarray,
        PM: FloatArray,
        nM: IntArray,
        mF: FloatArray,
        mM: FloatArray,
        cF: FloatArray,
        cM: FloatArray,
    ) -> tuple:
        """One candidate family: first ``i`` items of the *full* group F
        at capacity, the *marginal* group M greedily filled with the
        remaining bandwidth ``q = bw - PF0[i]``.

        Because every candidate spends the whole bandwidth, the fill
        volume collapses to ``u(i) = mM bw + (mF - mM) PF0[i]`` — no
        weighted-capacity prefixes needed, and ``u`` is monotone in
        ``i``. That makes the KKT residual ``f(i) = kappa_F_excl(i) -
        theta(i)`` non-increasing in ``i`` (each term is), so the first
        ``i`` with ``f <= 0`` — a vectorized binary search, O(A log J)
        gathers in place of any O(A J) candidate table — brackets the
        optimum and a small window around it is certified exactly.
        """
        dmf = mF - mM
        dcf = cF - cM

        def slp_at(idxG: np.ndarray, nG: IntArray, k: IntArray) -> FloatArray:
            """Slope of a group's ``(k + 1)``-th member; +inf past it."""
            kk = np.minimum(np.maximum(k, 0), Jm1)
            return np.where(
                (k >= 0) & (k < nG), slope_t[rows1, idxG[rows1, kk]], _INF
            )

        def pre_at(idxG: np.ndarray, P: FloatArray, k: IntArray) -> FloatArray:
            """Prefix cap sum of a group's first ``k`` members (k >= 0)."""
            kk = np.minimum(np.maximum(k - 1, 0), Jm1)
            return np.where(k > 0, P[rows1, idxG[rows1, kk]], 0.0)

        def count_m(q: FloatArray) -> IntArray:
            """Count of marginal-group members whose prefix sum <= q."""
            lo = np.zeros(A, dtype=np.intp)
            hi = nM.copy()
            while True:
                live = lo < hi
                if not live.any():
                    break
                mid = (lo + hi) >> 1
                gt = PM[rows1, idxM[rows1, np.minimum(mid, Jm1)]] > q
                hi = np.where(live & gt, mid, hi)
                lo = np.where(live & ~gt, mid + 1, lo)
            return lo

        def pieces(iv: IntArray) -> tuple:
            PF0 = pre_at(idxF, PF, iv)
            q = bw - PF0
            n = count_m(q)
            u_c = mM * bw + dmf * PF0
            r = W - u_c
            slpF_i = slp_at(idxF, nF, iv)
            slpM_n = slp_at(idxM, nM, n)
            return PF0, q, n, u_c, r, slpF_i, slpM_n

        def f_of(iv: IntArray) -> FloatArray:
            _pf, _q, _n, _u, r, slpF_i, slpM_n = pieces(iv)
            f = dcf * r - slpF_i + slpM_n
            # Past the full group's end there is no next item to promote,
            # so the search must never be pushed right of nF. Without the
            # override, iv >= nF with the marginal group also exhausted
            # gives -inf + inf = NaN there, which compares False ("push
            # right") and can strand the bracket outside the certifiable
            # window — whether it does depends on the probe sequence,
            # i.e. on the padded width J, breaking layout invariance.
            return np.where(iv >= nF, -_INF, f)

        def full_eval(iv: IntArray) -> tuple:
            PF0, q, n, u_c, r, slpF_i, slpM_n = pieces(iv)
            p = q - pre_at(idxM, PM, n)
            theta = cM * r - slpM_n
            kF_excl = cF * r - slpF_i
            kF_full = np.where(iv > 0, cF * r - slp_at(idxF, nF, iv - 1), _INF)
            kM_full = np.where(n > 0, cM * r - slp_at(idxM, nM, n - 1), _INF)
            pos = p > 0.0
            v_pos = (
                pos & (theta >= 0.0) & (kF_excl <= theta) & (theta <= kF_full)
            )
            lo_b = np.maximum(np.maximum(kF_excl, theta), 0.0)
            hi_b = np.minimum(kF_full, kM_full)
            v_vert = ~pos & (lo_b <= hi_b)
            ok_c = (q >= 0.0) & (iv <= nF) & (v_pos | v_vert)
            return ok_c, n, p, u_c

        return f_of, full_eval

    def search(f_of) -> IntArray:
        """Smallest candidate index in ``[0, J]`` with ``f(i) <= 0``.

        NaN residuals (both neighbour slopes ``+inf``) compare False and
        push the search right; the exact window check below decides."""
        lo = np.zeros(A, dtype=np.intp)
        hi = np.full(A, J, dtype=np.intp)
        while True:
            live = lo < hi
            if not live.any():
                break
            mid = (lo + hi) >> 1
            leq = f_of(mid) <= 0.0
            hi = np.where(live & leq, mid, hi)
            lo = np.where(live & ~leq, mid + 1, lo)
        return lo

    famL = np.zeros(A, dtype=bool)
    found = np.zeros(A, dtype=bool)
    cand_i = np.zeros(A, dtype=np.intp)
    cand_n = np.zeros(A, dtype=np.intp)
    cand_p = np.zeros(A)
    cand_u = np.zeros(A)
    with np.errstate(invalid="ignore", over="ignore"):
        families = (
            (True, make_family(idxH, PH, nHr, idxL, PL, nLr, m1s, m2s, c1, c2)),
            (False, make_family(idxL, PL, nLr, idxH, PH, nHr, m2s, m1s, c2, c1)),
        )
        for is_l, (f_of, full_eval) in families:
            if found.all():
                break
            istar = search(f_of)
            # Float round-off can displace the crossing by a step and exact
            # slope ties widen it into a run, so certify a small window of
            # candidates around the bracket. Any certified candidate is a
            # KKT point of a convex problem — a global optimum — so the
            # first one in fixed window order (family L, then H) is a
            # deterministic, layout-invariant choice. A row whose window
            # certifies nothing falls back to the bisection (counted).
            for d in (-2, -1, 0, 1, 2):
                iv = np.clip(istar + d, 0, J)
                ok_c, n, p, u_c = full_eval(iv)
                new = ok_c & ~found
                if new.any():
                    cand_i = np.where(new, iv, cand_i)
                    cand_n = np.where(new, n, cand_n)
                    cand_p = np.where(new, p, cand_p)
                    cand_u = np.where(new, u_c, cand_u)
                    famL |= new & is_l
                    found |= new

    solved = ok & found
    srows = np.flatnonzero(solved)
    if srows.size == 0:
        return alloc, u, solved

    def build(
        sub: IntArray,
        i_full: IntArray,
        n_marg: IntArray,
        p: FloatArray,
        idxF: np.ndarray,
        idxM: np.ndarray,
        u_val: FloatArray,
    ) -> None:
        """Scatter one candidate family's allocation back to item order.

        Gathers are width-limited to the longest prefix in play. The two
        scatters touch disjoint column sets per row (the groups are
        disjoint), entries past a row's own prefix write or add exact
        zeros, and a vertex candidate (``p == 0``) may have no marginal
        member at ``n_marg`` at all — its add is an exact ``+0.0`` at
        whatever column the tail parks there, which is a no-op.
        """
        ns = sub.size
        sub2 = sub[:, None]
        wF = int(i_full.max()) if ns else 0
        if wF > 0:
            tposF = idxF[sub2, np.arange(wF)[None, :]]
            aF = np.where(
                np.arange(wF) < i_full[:, None], cp_t[sub2, tposF], 0.0
            )
            alloc[sub2, ord0[sub2, tposF]] = aF
        wM = int(np.minimum(n_marg, Jm1).max()) + 1 if ns else 0
        if wM > 0:
            tposM = idxM[sub2, np.arange(wM)[None, :]]
            aM = np.where(
                np.arange(wM) < n_marg[:, None], cp_t[sub2, tposM], 0.0
            )
            aM[np.arange(ns), np.minimum(n_marg, wM - 1)] += np.where(
                n_marg < J, p, 0.0
            )
            alloc[sub2, ord0[sub2, tposM]] += aM
        u[sub] = u_val

    selL = famL[srows]
    rl = srows[selL]
    if rl.size:
        build(rl, cand_i[rl], cand_n[rl], cand_p[rl], idxH, idxL, cand_u[rl])
    rh = srows[~selL]
    if rh.size:
        build(rh, cand_i[rh], cand_n[rh], cand_p[rh], idxL, idxH, cand_u[rh])
    return alloc, u, solved

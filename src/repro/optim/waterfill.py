"""Batched dual-water-level fill for the ``P2`` fast path.

:func:`waterfill_batch` solves the per-(SBS, slot) residual fixed point of
subproblem ``P2`` for a whole stack of rows at once: every row is one
(SBS, slot) pair, so a single call covers all ``N`` SBSs of a window
instead of one solve per SBS. The scalar loop path routes through the same
kernel one SBS at a time, and every reduction inside the kernel is either
elementwise or a sequential prefix scan — zero-padded tail coordinates are
exactly inert — so the batched and loop layouts return bit-identical
solutions regardless of how rows are stacked or padded.

Closed-form solve (the common case)
-----------------------------------
Each row minimizes ``s (W - sum omega alloc)^2 + sum slope alloc`` over
``0 <= alloc <= caps`` and ``sum alloc <= bw``. Item ``j`` enters the
optimal allocation when the residual ``r = W - u`` exceeds its threshold
``t_j = slope_j / (2 s omega_j)`` (the benefit ``2 s r omega_j`` beats the
price ``slope_j``). When the bandwidth constraint is slack, the KKT system
collapses to a one-dimensional fixed point over a *sorted threshold scan*:

* sort items by ``t_j`` once; prefix-sum their weighted capacities ``U_k``;
* the fixed point lies in segment ``k*`` — the largest ``k`` with
  ``t_(k) < W - U_k`` (both sequences are monotone, so ``k*`` is a count);
* if ``W - U_k* <= t_(k*+1)`` the solution is interior: the first ``k*``
  items at full capacity, residual ``r* = W - U_k*``;
* otherwise the line ``W - r`` crosses inside the jump at ``r* = t_(k*+1)``
  and the items tied at that threshold (``kappa = 0``, indifferent) split
  the remaining weighted volume ``W - r* - U_k*`` greedily in stable order.

One argsort and a handful of prefix scans replace the legacy 26-iteration
bisection — and the result is the *exact* optimum rather than a bracketed
approximation. Rows whose closed-form allocation exceeds the bandwidth
(the cap must bind, so the threshold structure no longer applies) fall
back to the legacy bisection below; rows whose SBS group carries no
positive slope keep the single-pass greedy fill, which is bit-identical
to the pre-existing oracle path.

Legacy bisection (bandwidth-bound rows)
---------------------------------------
The greedy fill at residual ``r`` ranks items by ``kappa_j(r) = 2 s r
omega_j - slope_j`` and pours bandwidth down the ranking; bisection finds
``W - u(r) = r``. The fill's output depends on ``r`` only through the
*state* (eligible set, sort order), so the kernel stores the last state
evaluated on each side of the bracket; at each midpoint one gather plus
two vectorized checks — the ``(key, index)`` pairs strictly increasing
along the stored order (exactly the output a stable argsort would
produce; ``+inf`` runs are exempt because their caps are zeroed) and the
``+inf`` pattern matching the stored eligible-prefix length — prove the
stored state is valid at the midpoint, making ``u(mid)`` free. Since each
``kappa_j(r)`` is linear in ``r``, a state valid at both ends of a
bracket is valid throughout it, so a *cross-side* match certifies the
fill is constant on the bracket and the row settles immediately. Both
mechanisms are bitwise-invisible; ``early_exit=False`` runs every
iteration with fresh fills for A/B tests.
"""

from __future__ import annotations

import numpy as np

from repro.types import FloatArray, IntArray

#: Fixed bisection depth of the legacy bandwidth-bound path.
BISECTION_ITERS = 26

_INF = np.inf


def waterfill_batch(
    lam: FloatArray,
    caps: FloatArray,
    omega: FloatArray,
    mu: FloatArray,
    W: FloatArray,
    bandwidths: FloatArray,
    scale: float,
    *,
    group_ids: IntArray | None = None,
    early_exit: bool = True,
) -> tuple[FloatArray, FloatArray]:
    """Solve the water-fill for a stack of independent rows.

    Parameters
    ----------
    lam, caps, omega, mu:
        Row-stacked ``(R, J)`` arrays: demand, routing caps, BS weights
        and multipliers per flattened (class, item) coordinate. Rows from
        SBSs with fewer coordinates are zero-padded (zero caps make the
        padding inert — bitwise, not just approximately).
    W:
        Offloadable weighted volume per row, shape ``(R,)``.
    bandwidths:
        SBS bandwidth per row, shape ``(R,)``.
    scale:
        Quadratic BS-cost scale.
    group_ids:
        Optional ``(R,)`` int labels tying rows to their SBS. The
        "no bisection needed" shortcut (all slopes zero) is decided per
        SBS over the whole window, so the batched kernel must apply it
        per group, not per row. ``None`` treats the whole batch as one
        group.
    early_exit:
        Enable the state-reuse fast path of the legacy bisection
        (bitwise-invisible; see module docstring).

    Returns
    -------
    (alloc, u):
        Routed amounts ``(R, J)`` and offloaded weighted volume ``(R,)``.
    """
    R, J = lam.shape
    alloc_out = np.zeros_like(caps)
    u_out = np.zeros(R)
    if R == 0 or J == 0:
        return alloc_out, u_out

    # Columns with zero cap in every row are exactly inert: their
    # threshold is +inf, their weighted capacity contributes +0.0 to every
    # prefix scan, and their allocation is identically zero. Dropping them
    # up front is bitwise-invisible (stable sorts preserve the relative
    # order of the surviving columns) and shrinks every (rows, J) op —
    # typical caching instances route only the cached fraction of items.
    keep_cols = np.flatnonzero((caps > 0).any(axis=0))
    if keep_cols.size < J:
        alloc_c, u_out = waterfill_batch(
            np.ascontiguousarray(lam[:, keep_cols]),
            np.ascontiguousarray(caps[:, keep_cols]),
            np.ascontiguousarray(omega[:, keep_cols]),
            np.ascontiguousarray(mu[:, keep_cols]),
            W,
            bandwidths,
            scale,
            group_ids=group_ids,
            early_exit=early_exit,
        )
        alloc_out[:, keep_cols] = alloc_c
        return alloc_out, u_out

    two_s = 2.0 * scale
    cols = np.arange(J)

    # The full (R, J) slope tensor is only needed by the legacy bisection
    # (engaged on a few percent of calls); the closed form divides once by
    # the fused denominator and the single-pass fill needs no slope at all
    # (every cap-positive item has mu = 0 there). Computing it lazily keeps
    # the hot path at one division.
    slope_arr: FloatArray | None = None

    def get_slope() -> FloatArray:
        nonlocal slope_arr
        if slope_arr is None:
            with np.errstate(divide="ignore", invalid="ignore"):
                slope_arr = np.where(lam > 0, mu / lam, _INF)
        return slope_arr

    def full_fill(
        rows: IntArray, r: FloatArray, *, with_alloc: bool, zero_slope: bool = False
    ) -> tuple[FloatArray | None, FloatArray]:
        om = omega[rows]
        cp = caps[rows]
        kappa = two_s * r[:, None] * om
        if not zero_slope:
            kappa -= get_slope()[rows]
        eligible = (kappa > 0) & (cp > 0)
        key = np.where(eligible, -kappa, _INF)
        order = np.argsort(key, axis=1, kind="stable")
        ridx = np.arange(rows.size)[:, None]
        caps_sorted = np.where(eligible, cp, 0.0)[ridx, order]
        cum = np.cumsum(caps_sorted, axis=1)
        alloc_sorted = np.clip(
            bandwidths[rows, None] - (cum - caps_sorted), 0.0, caps_sorted
        )
        # Sequential scan instead of a blocked dot keeps the value
        # invariant to trailing zero padding.
        u = np.cumsum(alloc_sorted * om[ridx, order], axis=1)[:, -1]
        alloc = None
        if with_alloc:
            alloc = np.zeros_like(cp)
            alloc[ridx, order] = alloc_sorted
        return alloc, u

    # Per-SBS shortcut: when no item of the group carries a positive slope
    # with positive cap, the fill order and eligible set do not depend on
    # r and one bandwidth-capped pass at max(W, 1) is exact. This is the
    # fixed-cache oracle's hot path. (caps > 0 implies lam > 0, where
    # slope > 0 iff mu > 0 — no division needed for the test.)
    row_any = ((mu > 0) & (caps > 0)).any(axis=1)
    if group_ids is None:
        bisect_rows = np.full(R, bool(row_any.any()))
    else:
        grp = np.zeros(int(group_ids.max()) + 1, dtype=bool)
        np.logical_or.at(grp, group_ids, row_any)
        bisect_rows = grp[group_ids]

    single = np.flatnonzero(~bisect_rows)
    if single.size:
        # Every cap-positive item of a single-pass group has slope exactly
        # zero, so the zero-slope fill is bit-identical and skips the
        # (R, J) division.
        alloc, u = full_fill(
            single, np.maximum(W[single], 1.0), with_alloc=True, zero_slope=True
        )
        assert alloc is not None
        alloc_out[single] = alloc
        u_out[single] = u

    act = np.flatnonzero(bisect_rows)
    if act.size == 0:
        return alloc_out, u_out

    # ---------------------------------------------------- closed form
    om_a = omega[act]
    cp_a = caps[act]
    bw_a = bandwidths[act]
    W_a = W[act].astype(np.float64, copy=False)
    A = act.size
    ridx = np.arange(A)[:, None]
    valid = (cp_a > 0) & (om_a > 0)
    # Fused threshold t_j = mu_j / (2 s lam_j omega_j): one division, and
    # valid entries have lam > 0 so the denominator is positive.
    with np.errstate(divide="ignore", invalid="ignore"):
        t_thr = np.where(valid, mu[act] / (two_s * (lam[act] * om_a)), _INF)
    ordt = np.argsort(t_thr, axis=1, kind="stable")
    tv = t_thr[ridx, ordt]
    cps = cp_a[ridx, ordt]
    cwv = np.where(valid, om_a * cp_a, 0.0)[ridx, ordt]
    cum = np.cumsum(cwv, axis=1)
    # k* = number of items strictly below the fixed-point residual. Both
    # tv (sorted) and W - cum (cumsum of non-negatives) are monotone, so
    # the comparison row is a prefix of Trues and the count locates it.
    kstar = (tv < (W_a[:, None] - cum)).sum(axis=1)
    rows1 = np.arange(A)
    U_star = np.where(kstar > 0, cum[rows1, np.maximum(kstar - 1, 0)], 0.0)
    tv_next = np.where(kstar < J, tv[rows1, np.minimum(kstar, J - 1)], _INF)
    r_int = W_a - U_star
    interior = r_int <= tv_next
    u_a = np.where(interior, U_star, W_a - tv_next)

    alloc_sorted = np.where(cols < kstar[:, None], cps, 0.0)
    jrows = np.flatnonzero(~interior)
    if jrows.size:
        # The crossing sits inside the jump at r* = tv_next: items tied at
        # that threshold are indifferent (kappa = 0) and greedily absorb
        # the remaining weighted volume in stable order. The budget never
        # exceeds the tied run's weighted capacity (otherwise k* would be
        # larger), so items beyond the run stay at zero.
        bu = ((W_a[jrows] - tv_next[jrows]) - U_star[jrows])[:, None]
        mass = cum[jrows] - U_star[jrows, None]
        # Ties can straddle the k* boundary (tv[k*-1] == tv[k*] with the
        # prefix condition flipping on cum alone). Straddling items are
        # first among the indifferent tied items in stable order, so their
        # full-caps prefix allocation is already greedy-correct and their
        # mass is inside U_star — the residual budget is distributed over
        # run positions >= k* only.
        run = (tv[jrows] == tv_next[jrows, None]) & (cols >= kstar[jrows, None])
        cwj = cwv[jrows]
        run_full = run & (mass <= bu)
        boundary = run & (mass > bu) & ((mass - cwj) < bu)
        with np.errstate(divide="ignore", invalid="ignore"):
            part = np.clip(
                (bu - (mass - cwj)) / om_a[jrows[:, None], ordt[jrows]],
                0.0,
                cps[jrows],
            )
        alloc_sorted[jrows] += np.where(
            run_full, cps[jrows], np.where(boundary, part, 0.0)
        )

    tot = alloc_sorted.sum(axis=1)
    closed = tot <= bw_a
    crows = np.flatnonzero(closed)
    if crows.size:
        allc = np.zeros((crows.size, J))
        allc[np.arange(crows.size)[:, None], ordt[crows]] = alloc_sorted[crows]
        alloc_out[act[crows]] = allc
        u_out[act[crows]] = u_a[crows]

    # ------------------------------------------- legacy bisection (bw-bound)
    act = act[~closed]
    if act.size == 0:
        return alloc_out, u_out
    keep = ~closed
    om_a, cp_a = om_a[keep], cp_a[keep]
    sl_a = get_slope()[act]
    bw_a, W_a = bw_a[keep], W_a[keep]
    r_lo = np.zeros(act.size)
    r_hi = np.maximum(W_a, 1e-12)
    A = act.size
    # Stored fill state per bracket side: sort order, eligible-prefix
    # length, u, and a "present" flag. Invariant: a flagged side's state
    # is fill-valid at that side's current residual.
    ol = np.zeros((A, J), dtype=np.intp)
    oh = np.zeros((A, J), dtype=np.intp)
    ul = np.zeros(A)
    uh = np.zeros(A)
    ml = np.zeros(A, dtype=np.intp)
    mh = np.zeros(A, dtype=np.intp)
    hl = np.zeros(A, dtype=bool)
    hh = np.zeros(A, dtype=bool)

    def state_fill(
        order: IntArray, m: IntArray, cp: FloatArray, bw: FloatArray
    ) -> FloatArray:
        """Replay a stored fill state; returns the scattered allocation."""
        n = order.shape[0]
        sidx = np.arange(n)[:, None]
        caps_sorted = np.where(cols < m[:, None], cp[sidx, order], 0.0)
        cum = np.cumsum(caps_sorted, axis=1)
        alloc_sorted = np.clip(bw[:, None] - (cum - caps_sorted), 0.0, caps_sorted)
        alloc = np.zeros((n, J))
        alloc[sidx, order] = alloc_sorted
        return alloc

    def state_match(
        key: FloatArray, rows: IntArray, order: IntArray, m: IntArray
    ) -> IntArray:
        """Rows (subset indices into ``key``) whose key row provably sorts
        to the stored state.

        A stable argsort orders by ``(key, original index)``; the stored
        order reproduces it exactly when that pair sequence is strictly
        increasing along the stored order — keys non-decreasing and, in
        every run of equal finite keys, indices ascending. Runs of ``+inf``
        are exempt (zero caps make their arrangement fill-invisible), but
        the ``+inf`` pattern must match the stored eligible-prefix length.
        """
        o = order[rows]
        seq = key[rows[:, None], o]
        a, b = seq[:, :-1], seq[:, 1:]
        ok = np.all(
            (b > a) | ((a == b) & ((o[:, 1:] > o[:, :-1]) | (a == _INF))),
            axis=1,
        )
        ok &= np.all((seq != _INF) == (cols < m[rows, None]), axis=1)
        return rows[ok]

    for _ in range(BISECTION_ITERS):
        if act.size == 0:
            break
        A = act.size
        mid = 0.5 * (r_lo + r_hi)
        kappa = two_s * mid[:, None] * om_a - sl_a
        eligible = (kappa > 0) & (cp_a > 0)
        key = np.where(eligible, -kappa, _INF)
        u_m = np.empty(A)
        used = np.full(A, 2, dtype=np.int8)  # 0 = lo state, 1 = hi, 2 = fresh
        if early_exit:
            lo_rows = np.flatnonzero(hl)
            if lo_rows.size:
                matched = state_match(key, lo_rows, ol, ml)
                u_m[matched] = ul[matched]
                used[matched] = 0
            rem = np.flatnonzero((used == 2) & hh)
            if rem.size:
                matched = state_match(key, rem, oh, mh)
                u_m[matched] = uh[matched]
                used[matched] = 1
        fresh = np.flatnonzero(used == 2)
        if fresh.size:
            keyf = key[fresh]
            eligf = eligible[fresh]
            order_f = np.argsort(keyf, axis=1, kind="stable")
            fidx = np.arange(fresh.size)[:, None]
            caps_sorted = np.where(eligf, cp_a[fresh], 0.0)[fidx, order_f]
            cum_f = np.cumsum(caps_sorted, axis=1)
            alloc_sorted_f = np.clip(
                bw_a[fresh, None] - (cum_f - caps_sorted), 0.0, caps_sorted
            )
            u_m[fresh] = np.cumsum(
                alloc_sorted_f * om_a[fresh][fidx, order_f], axis=1
            )[:, -1]
            m_f = eligf.sum(axis=1)

        implied = W_a - u_m
        too_small = implied > mid  # G(r) > 0 -> root is to the right
        r_lo = np.where(too_small, mid, r_lo)
        r_hi = np.where(too_small, r_hi, mid)
        if not early_exit:
            continue

        # The updated side inherits the state used at the midpoint.
        cross_hi = (used == 1) & too_small
        if cross_hi.any():
            idx = np.flatnonzero(cross_hi)
            ol[idx] = oh[idx]
            ul[idx] = uh[idx]
            ml[idx] = mh[idx]
            hl[idx] = True
        cross_lo = (used == 0) & ~too_small
        if cross_lo.any():
            idx = np.flatnonzero(cross_lo)
            oh[idx] = ol[idx]
            uh[idx] = ul[idx]
            mh[idx] = ml[idx]
            hh[idx] = True
        if fresh.size:
            sel = too_small[fresh]
            tgt = fresh[sel]
            if tgt.size:
                ol[tgt] = order_f[sel]
                ul[tgt] = u_m[tgt]
                ml[tgt] = m_f[sel]
                hl[tgt] = True
            tgt = fresh[~sel]
            if tgt.size:
                oh[tgt] = order_f[~sel]
                uh[tgt] = u_m[tgt]
                mh[tgt] = m_f[~sel]
                hh[tgt] = True

        # Cross-side match -> the state is valid at both ends of the new
        # bracket, hence constant on it: the final gap is exactly zero and
        # the closing interpolation returns this state's fill. Settle now.
        settle = cross_hi | cross_lo
        if settle.any():
            s = np.flatnonzero(settle)
            alloc_out[act[s]] = state_fill(ol[s], ml[s], cp_a[s], bw_a[s])
            u_out[act[s]] = ul[s]
            kp = ~settle
            act = act[kp]
            om_a, cp_a, sl_a = om_a[kp], cp_a[kp], sl_a[kp]
            bw_a, W_a = bw_a[kp], W_a[kp]
            r_lo, r_hi = r_lo[kp], r_hi[kp]
            ol, oh, ul, uh = ol[kp], oh[kp], ul[kp], uh[kp]
            ml, mh, hl, hh = ml[kp], mh[kp], hl[kp], hh[kp]

    if act.size:
        A = act.size

        def endpoint(
            have: FloatArray,
            order: IntArray,
            u_s: FloatArray,
            m_s: IntArray,
            r_end: FloatArray,
        ) -> tuple[FloatArray, FloatArray]:
            alloc = np.empty((A, J))
            u = np.empty(A)
            hv = np.flatnonzero(have)
            if hv.size:
                alloc[hv] = state_fill(order[hv], m_s[hv], cp_a[hv], bw_a[hv])
                u[hv] = u_s[hv]
            nh = np.flatnonzero(~have)
            if nh.size:
                al, uu = full_fill(act[nh], r_end[nh], with_alloc=True)
                assert al is not None
                alloc[nh] = al
                u[nh] = uu
            return alloc, u

        alloc_lo, u_lo = endpoint(hl, ol, ul, ml, r_lo)
        alloc_hi, u_hi = endpoint(hh, oh, uh, mh, r_hi)
        u_target = W_a - 0.5 * (r_lo + r_hi)
        gap = u_hi - u_lo
        with np.errstate(divide="ignore", invalid="ignore"):
            t = np.where(
                gap > 1e-15, np.clip((u_target - u_lo) / gap, 0.0, 1.0), 0.0
            )
        alloc_out[act] = alloc_lo + t[:, None] * (alloc_hi - alloc_lo)
        u_out[act] = u_lo + t * gap
    return alloc_out, u_out

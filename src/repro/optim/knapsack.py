"""Fractional knapsack: the exact load-balancing solver for fixed caches.

With the paper's quadratic BS cost and ``omega-hat = 0`` (the evaluation
setting of Section V-B), the per-slot load-balancing problem *given a fixed
cache* reduces to maximizing the offloaded weighted volume subject to the
SBS bandwidth — a fractional knapsack solved exactly by a greedy fill in
``O(items log items)``. The general ``omega-hat > 0`` case is strictly
convex and handled by FISTA in :mod:`repro.core.load_balancing`; this
module provides the fast exact path and the greedy primitive it rests on.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.types import FloatArray


def fractional_knapsack_offload(
    unit_values: FloatArray,
    capacities: FloatArray,
    budget: float,
) -> FloatArray:
    """Maximize ``sum(unit_values * z)`` s.t. ``0 <= z <= capacities``, ``sum(z) <= budget``.

    ``unit_values[i]`` is the value gained per unit of item ``i`` routed;
    ``capacities[i]`` the maximum routable amount. Items are filled in
    decreasing unit value; items with non-positive unit value are skipped
    (routing them cannot help). Returns the optimal amounts ``z``.
    """
    unit_values = np.asarray(unit_values, dtype=np.float64)
    capacities = np.asarray(capacities, dtype=np.float64)
    if unit_values.shape != capacities.shape:
        raise ConfigurationError(
            f"values shape {unit_values.shape} != capacities shape {capacities.shape}"
        )
    if np.any(capacities < 0):
        raise ConfigurationError("capacities must be non-negative")
    if budget < 0:
        raise ConfigurationError(f"budget must be >= 0, got {budget}")

    z = np.zeros_like(capacities)
    remaining = float(budget)
    order = np.argsort(-unit_values, kind="stable")
    for i in order:
        if remaining <= 0:
            break
        if unit_values[i] <= 0:
            break
        take = min(capacities[i], remaining)
        z[i] = take
        remaining -= take
    return z

"""Successive-shortest-path min-cost flow with node potentials.

Used as an exact combinatorial solver for the caching subproblem ``P1``
(see :mod:`repro.core.caching_lp`): the totally unimodular LP of Theorem 1
is equivalently a small min-cost flow in which each cache slot is one flow
unit travelling through time. This solver supports real-valued arc costs,
including negative ones, via:

- an initial potential computed by Bellman-Ford (general graphs) or a
  single topological-order pass (DAGs, the caching case), and
- Dijkstra with reduced costs for every augmentation.

Capacities are integers (cache slots), so augmentations are integral and
termination is guaranteed.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError, SolverError
from repro.types import FloatArray

_INF = float("inf")


@dataclass(frozen=True)
class FlowResult:
    """Outcome of a min-cost-flow computation.

    Attributes
    ----------
    amount:
        Units of flow actually routed from source to sink.
    cost:
        Total cost of the routed flow.
    arc_flow:
        Flow on each arc, indexed by the ids returned from ``add_arc``.
    """

    amount: int
    cost: float
    arc_flow: FloatArray


class MinCostFlow:
    """A directed graph supporting successive-shortest-path min-cost flow."""

    def __init__(self, num_nodes: int) -> None:
        if num_nodes <= 0:
            raise ConfigurationError(f"num_nodes must be positive, got {num_nodes}")
        self.num_nodes = num_nodes
        # Forward and residual arcs are stored interleaved: arc 2i is the
        # i-th user arc, arc 2i+1 its residual twin.
        self._head: list[int] = []
        self._cap: list[float] = []
        self._cost: list[float] = []
        self._adj: list[list[int]] = [[] for _ in range(num_nodes)]
        self._num_user_arcs = 0
        self._cap0: list[float] | None = None

    def add_arc(self, u: int, v: int, capacity: int, cost: float) -> int:
        """Add an arc ``u -> v`` and return its id (for flow read-back)."""
        if not (0 <= u < self.num_nodes and 0 <= v < self.num_nodes):
            raise ConfigurationError(f"arc ({u}, {v}) references unknown node")
        if capacity < 0:
            raise ConfigurationError(f"capacity must be >= 0, got {capacity}")
        self._cap0 = None  # topology changed; the pre-solve snapshot is stale
        arc_id = self._num_user_arcs
        self._adj[u].append(len(self._head))
        self._head.append(v)
        self._cap.append(float(capacity))
        self._cost.append(float(cost))
        self._adj[v].append(len(self._head))
        self._head.append(u)
        self._cap.append(0.0)
        self._cost.append(-float(cost))
        self._num_user_arcs += 1
        return arc_id

    # ------------------------------------------------------------ graph reuse
    #
    # The caching subproblem solves the same arc topology every subgradient
    # iteration — only the costs change with the dual prices. These hooks
    # let callers rebuild costs in place and rewind the flow instead of
    # reconstructing nodes and arcs for every solve.

    def set_arc_cost(self, arc_id: int, cost: float) -> None:
        """Replace the cost of user arc ``arc_id`` (and its residual twin)."""
        if not 0 <= arc_id < self._num_user_arcs:
            raise ConfigurationError(f"unknown arc id {arc_id}")
        e = 2 * arc_id
        c = float(cost)
        self._cost[e] = c
        self._cost[e + 1] = -c

    def set_arc_costs(self, arc_ids: "np.ndarray", costs: "np.ndarray") -> None:
        """Bulk :meth:`set_arc_cost` for flat, same-length id/cost arrays."""
        ids = np.asarray(arc_ids).reshape(-1)
        values = np.asarray(costs, dtype=np.float64).reshape(-1)
        if ids.shape != values.shape:
            raise ConfigurationError(
                f"got {ids.size} arc ids but {values.size} costs"
            )
        if ids.size and not (0 <= int(ids.min()) and int(ids.max()) < self._num_user_arcs):
            raise ConfigurationError("arc id out of range")
        cost_list = self._cost
        for arc_id, c in zip(ids.tolist(), values.tolist()):
            e = 2 * arc_id
            cost_list[e] = c
            cost_list[e + 1] = -c

    def reset(self) -> None:
        """Rewind all flow, restoring the capacities seen by the first solve.

        Only valid when no arcs were added since that solve (adding an arc
        invalidates the snapshot, making this a no-op until the next solve).
        """
        if self._cap0 is not None:
            self._cap[:] = self._cap0

    # ------------------------------------------------------------ potentials

    def _bellman_ford_potentials(self, source: int) -> list[float]:
        dist = [_INF] * self.num_nodes
        dist[source] = 0.0
        for _ in range(self.num_nodes - 1):
            changed = False
            for u in range(self.num_nodes):
                du = dist[u]
                if du == _INF:
                    continue
                for e in self._adj[u]:
                    if self._cap[e] > 1e-12 and du + self._cost[e] < dist[self._head[e]] - 1e-12:
                        dist[self._head[e]] = du + self._cost[e]
                        changed = True
            if not changed:
                break
        else:
            # One more relaxation detects negative cycles.
            for u in range(self.num_nodes):
                du = dist[u]
                if du == _INF:
                    continue
                for e in self._adj[u]:
                    if self._cap[e] > 1e-12 and du + self._cost[e] < dist[self._head[e]] - 1e-9:
                        raise SolverError("negative-cost cycle detected")
        return dist

    def _topological_potentials(self, source: int) -> list[float]:
        """Single-pass shortest distances for DAGs (Kahn order)."""
        indeg = [0] * self.num_nodes
        for u in range(self.num_nodes):
            for e in self._adj[u]:
                if e % 2 == 0:  # forward arcs only define the DAG
                    indeg[self._head[e]] += 1
        order: list[int] = [u for u in range(self.num_nodes) if indeg[u] == 0]
        head = 0
        while head < len(order):
            u = order[head]
            head += 1
            for e in self._adj[u]:
                if e % 2 == 0:
                    v = self._head[e]
                    indeg[v] -= 1
                    if indeg[v] == 0:
                        order.append(v)
        if len(order) != self.num_nodes:
            raise ConfigurationError("graph is not a DAG; use Bellman-Ford potentials")
        dist = [_INF] * self.num_nodes
        dist[source] = 0.0
        for u in order:
            du = dist[u]
            if du == _INF:
                continue
            for e in self._adj[u]:
                if e % 2 == 0 and self._cap[e] > 1e-12:
                    v = self._head[e]
                    if du + self._cost[e] < dist[v]:
                        dist[v] = du + self._cost[e]
        return dist

    # ----------------------------------------------------------------- solve

    def solve(
        self,
        source: int,
        sink: int,
        amount: int,
        *,
        dag: bool = False,
        stop_when_unprofitable: bool = False,
    ) -> FlowResult:
        """Route up to ``amount`` units from ``source`` to ``sink`` at min cost.

        Parameters
        ----------
        dag:
            When the forward graph is a DAG, initial potentials come from a
            linear-time topological pass instead of Bellman-Ford.
        stop_when_unprofitable:
            Stop early once the cheapest augmenting path has non-negative
            cost. With free parallel "idle" capacity in the network this
            computes the min-cost flow of *any* value up to ``amount``.
        """
        if source == sink:
            raise ConfigurationError("source and sink must differ")
        if amount < 0:
            raise ConfigurationError(f"amount must be >= 0, got {amount}")
        if self._cap0 is None:
            self._cap0 = list(self._cap)

        potentials = (
            self._topological_potentials(source)
            if dag
            else self._bellman_ford_potentials(source)
        )
        flow = 0
        total_cost = 0.0
        while flow < amount:
            dist, parent_arc = self._dijkstra(source, potentials)
            if dist[sink] == _INF:
                break
            path_cost = dist[sink] + potentials[sink] - potentials[source]
            if stop_when_unprofitable and path_cost >= -1e-12:
                break
            for v in range(self.num_nodes):
                if dist[v] < _INF:
                    potentials[v] += dist[v]
            # Bottleneck along the path.
            bottleneck = float(amount - flow)
            v = sink
            while v != source:
                e = parent_arc[v]
                bottleneck = min(bottleneck, self._cap[e])
                v = self._head[e ^ 1]
            bottleneck = float(int(bottleneck))  # capacities are integral
            if bottleneck <= 0:
                raise SolverError("zero-bottleneck augmenting path")
            v = sink
            while v != source:
                e = parent_arc[v]
                self._cap[e] -= bottleneck
                self._cap[e ^ 1] += bottleneck
                v = self._head[e ^ 1]
            flow += int(bottleneck)
            total_cost += bottleneck * path_cost

        arc_flow = np.array(
            [self._cap[2 * i + 1] for i in range(self._num_user_arcs)],
            dtype=np.float64,
        )
        return FlowResult(amount=flow, cost=total_cost, arc_flow=arc_flow)

    def _dijkstra(
        self, source: int, potentials: list[float]
    ) -> tuple[list[float], list[int]]:
        dist = [_INF] * self.num_nodes
        parent_arc = [-1] * self.num_nodes
        dist[source] = 0.0
        heap: list[tuple[float, int]] = [(0.0, source)]
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist[u] + 1e-15:
                continue
            pu = potentials[u]
            if pu == _INF:
                continue
            for e in self._adj[u]:
                if self._cap[e] <= 1e-12:
                    continue
                v = self._head[e]
                if potentials[v] == _INF:
                    continue
                reduced = self._cost[e] + pu - potentials[v]
                if reduced < -1e-7:
                    raise SolverError(
                        f"negative reduced cost {reduced:.3e}; potentials are stale"
                    )
                nd = d + max(reduced, 0.0)
                if nd < dist[v] - 1e-15:
                    dist[v] = nd
                    parent_arc[v] = e
                    heapq.heappush(heap, (nd, v))
        return dist, parent_arc

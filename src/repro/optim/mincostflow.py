"""Successive-shortest-path min-cost flow with node potentials.

Used as an exact combinatorial solver for the caching subproblem ``P1``
(see :mod:`repro.core.caching_lp`): the totally unimodular LP of Theorem 1
is equivalently a small min-cost flow in which each cache slot is one flow
unit travelling through time. This solver supports real-valued arc costs,
including negative ones, via:

- an initial potential computed by Bellman-Ford (general graphs) or a
  single topological-order pass (DAGs, the caching case), and
- Dijkstra with reduced costs for every augmentation.

Capacities are integers (cache slots), so augmentations are integral and
termination is guaranteed.

In the batched P1 path this per-SBS solver is the *fallback*, not the
front door: the vectorized relaxed DP and the cap-constrained cancel
kernel (:mod:`repro.core.capped`) answer the stacked rows first, and both
certify optimality by the same criterion this solver terminates on — no
improving arc (respectively, no negative cycle) left in the residual
graph. The capped kernel's node layout mirrors this graph exactly (one
hub per slot boundary, a split in/out node pair per ``(slot, item)``
holding arc), so a row it certifies is bit-comparable against
:func:`repro.core.caching_lp._solve_single_sbs_flow` in tests.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError, SolverError
from repro.types import FloatArray

_INF = float("inf")


@dataclass(frozen=True)
class FlowState:
    """A resumable snapshot of a solved flow: caps, potentials, and costs.

    Captured by :meth:`MinCostFlow.export_state` after a successful solve
    and consumed by :meth:`MinCostFlow.resume`, which re-optimizes from the
    retained flow instead of cold-starting after a cost change. ``costs``
    records the arc costs the potentials were settled against, so a resume
    can seed its repair worklist from exactly the arcs that changed. The
    state is plain data (picklable), so it can travel through executor
    task tuples to process workers and back.
    """

    caps: FloatArray
    potentials: FloatArray
    costs: FloatArray
    amount: int


@dataclass(frozen=True)
class FlowResult:
    """Outcome of a min-cost-flow computation.

    Attributes
    ----------
    amount:
        Units of flow actually routed from source to sink.
    cost:
        Total cost of the routed flow.
    arc_flow:
        Flow on each arc, indexed by the ids returned from ``add_arc``.
    """

    amount: int
    cost: float
    arc_flow: FloatArray


class MinCostFlow:
    """A directed graph supporting successive-shortest-path min-cost flow."""

    def __init__(self, num_nodes: int) -> None:
        if num_nodes <= 0:
            raise ConfigurationError(f"num_nodes must be positive, got {num_nodes}")
        self.num_nodes = num_nodes
        # Forward and residual arcs are stored interleaved: arc 2i is the
        # i-th user arc, arc 2i+1 its residual twin.
        self._head: list[int] = []
        self._cap: list[float] = []
        self._cost: list[float] = []
        self._adj: list[list[int]] = [[] for _ in range(num_nodes)]
        # (arc id, head) pairs per node, built lazily; saves one list
        # lookup per scanned arc in the Dijkstra hot loop.
        self._adj_pairs: list[list[tuple[int, int]]] | None = None
        self._num_user_arcs = 0
        self._cap0: list[float] | None = None
        self._potentials: list[float] | None = None
        self._last_amount = 0
        self._topo_order: list[int] | None = None
        #: Whether the most recent :meth:`resume` fell back to a cold solve.
        self.last_resume_bailed = False

    def add_arc(self, u: int, v: int, capacity: int, cost: float) -> int:
        """Add an arc ``u -> v`` and return its id (for flow read-back)."""
        if not (0 <= u < self.num_nodes and 0 <= v < self.num_nodes):
            raise ConfigurationError(f"arc ({u}, {v}) references unknown node")
        if capacity < 0:
            raise ConfigurationError(f"capacity must be >= 0, got {capacity}")
        self._cap0 = None  # topology changed; the pre-solve snapshot is stale
        self._topo_order = None
        self._adj_pairs = None
        arc_id = self._num_user_arcs
        self._adj[u].append(len(self._head))
        self._head.append(v)
        self._cap.append(float(capacity))
        self._cost.append(float(cost))
        self._adj[v].append(len(self._head))
        self._head.append(u)
        self._cap.append(0.0)
        self._cost.append(-float(cost))
        self._num_user_arcs += 1
        return arc_id

    # ------------------------------------------------------------ graph reuse
    #
    # The caching subproblem solves the same arc topology every subgradient
    # iteration — only the costs change with the dual prices. These hooks
    # let callers rebuild costs in place and rewind the flow instead of
    # reconstructing nodes and arcs for every solve.

    def set_arc_cost(self, arc_id: int, cost: float) -> None:
        """Replace the cost of user arc ``arc_id`` (and its residual twin)."""
        if not 0 <= arc_id < self._num_user_arcs:
            raise ConfigurationError(f"unknown arc id {arc_id}")
        e = 2 * arc_id
        c = float(cost)
        self._cost[e] = c
        self._cost[e + 1] = -c

    def set_arc_costs(self, arc_ids: "np.ndarray", costs: "np.ndarray") -> None:
        """Bulk :meth:`set_arc_cost` for flat, same-length id/cost arrays."""
        ids = np.asarray(arc_ids).reshape(-1)
        values = np.asarray(costs, dtype=np.float64).reshape(-1)
        if ids.shape != values.shape:
            raise ConfigurationError(
                f"got {ids.size} arc ids but {values.size} costs"
            )
        if ids.size and not (0 <= int(ids.min()) and int(ids.max()) < self._num_user_arcs):
            raise ConfigurationError("arc id out of range")
        cost_list = self._cost
        for arc_id, c in zip(ids.tolist(), values.tolist()):
            e = 2 * arc_id
            cost_list[e] = c
            cost_list[e + 1] = -c

    def set_all_arc_costs(self, costs: "np.ndarray") -> None:
        """Replace every user arc's cost at once from an id-indexed array.

        Equivalent to ``set_arc_costs(arange(num_user_arcs), costs)`` but
        rewrites the interleaved forward/residual cost storage in one
        vectorized pass — the per-solve hot path for pooled flow templates,
        whose topology is fixed and whose costs are rewritten every solve.
        """
        values = np.asarray(costs, dtype=np.float64).reshape(-1)
        if values.size != self._num_user_arcs:
            raise ConfigurationError(
                f"got {values.size} costs for {self._num_user_arcs} user arcs"
            )
        interleaved = np.empty(2 * values.size, dtype=np.float64)
        interleaved[0::2] = values
        interleaved[1::2] = -values
        self._cost[:] = interleaved.tolist()

    def reset(self) -> None:
        """Rewind all flow, restoring the capacities seen by the first solve.

        Only valid when no arcs were added since that solve (adding an arc
        invalidates the snapshot, making this a no-op until the next solve).
        """
        if self._cap0 is not None:
            self._cap[:] = self._cap0

    # ------------------------------------------------------------ potentials

    def _bellman_ford_potentials(self, source: int) -> list[float]:
        dist = [_INF] * self.num_nodes
        dist[source] = 0.0
        for _ in range(self.num_nodes - 1):
            changed = False
            for u in range(self.num_nodes):
                du = dist[u]
                if du == _INF:
                    continue
                for e in self._adj[u]:
                    if self._cap[e] > 1e-12 and du + self._cost[e] < dist[self._head[e]] - 1e-12:
                        dist[self._head[e]] = du + self._cost[e]
                        changed = True
            if not changed:
                break
        else:
            # One more relaxation detects negative cycles.
            for u in range(self.num_nodes):
                du = dist[u]
                if du == _INF:
                    continue
                for e in self._adj[u]:
                    if self._cap[e] > 1e-12 and du + self._cost[e] < dist[self._head[e]] - 1e-9:
                        raise SolverError("negative-cost cycle detected")
        return dist

    def _topological_potentials(self, source: int) -> list[float]:
        """Single-pass shortest distances for DAGs (Kahn order).

        The Kahn order depends only on the arc topology, so it is computed
        once and cached until an arc is added; repeat solves over a pooled
        template pay only for the relaxation pass.
        """
        order = self._topo_order
        if order is None:
            indeg = [0] * self.num_nodes
            for u in range(self.num_nodes):
                for e in self._adj[u]:
                    if e % 2 == 0:  # forward arcs only define the DAG
                        indeg[self._head[e]] += 1
            order = [u for u in range(self.num_nodes) if indeg[u] == 0]
            head = 0
            while head < len(order):
                u = order[head]
                head += 1
                for e in self._adj[u]:
                    if e % 2 == 0:
                        v = self._head[e]
                        indeg[v] -= 1
                        if indeg[v] == 0:
                            order.append(v)
            if len(order) != self.num_nodes:
                raise ConfigurationError(
                    "graph is not a DAG; use Bellman-Ford potentials"
                )
            self._topo_order = order
        dist = [_INF] * self.num_nodes
        dist[source] = 0.0
        for u in order:
            du = dist[u]
            if du == _INF:
                continue
            for e in self._adj[u]:
                if e % 2 == 0 and self._cap[e] > 1e-12:
                    v = self._head[e]
                    if du + self._cost[e] < dist[v]:
                        dist[v] = du + self._cost[e]
        return dist

    # ----------------------------------------------------------------- solve

    def solve(
        self,
        source: int,
        sink: int,
        amount: int,
        *,
        dag: bool = False,
        stop_when_unprofitable: bool = False,
        initial_potentials: list[float] | None = None,
    ) -> FlowResult:
        """Route up to ``amount`` units from ``source`` to ``sink`` at min cost.

        Parameters
        ----------
        dag:
            When the forward graph is a DAG, initial potentials come from a
            linear-time topological pass instead of Bellman-Ford.
        stop_when_unprofitable:
            Stop early once the cheapest augmenting path has non-negative
            cost. With free parallel "idle" capacity in the network this
            computes the min-cost flow of *any* value up to ``amount``.
        initial_potentials:
            Caller-computed shortest distances from ``source`` on the empty
            flow (one entry per node). Callers whose graph has closed-form
            structure (the caching flow) supply these to skip the generic
            potential pass; the values must equal what that pass would
            compute, or Dijkstra's stale-potential guard fires.
        """
        if source == sink:
            raise ConfigurationError("source and sink must differ")
        if amount < 0:
            raise ConfigurationError(f"amount must be >= 0, got {amount}")
        if self._cap0 is None:
            self._cap0 = list(self._cap)

        if initial_potentials is not None:
            if len(initial_potentials) != self.num_nodes:
                raise ConfigurationError(
                    f"got {len(initial_potentials)} potentials for "
                    f"{self.num_nodes} nodes"
                )
            potentials = list(initial_potentials)
        else:
            potentials = (
                self._topological_potentials(source)
                if dag
                else self._bellman_ford_potentials(source)
            )
        flow = 0
        total_cost = 0.0
        while flow < amount:
            dist, parent_arc = self._dijkstra(source, potentials)
            if dist[sink] == _INF:
                break
            path_cost = dist[sink] + potentials[sink] - potentials[source]
            if stop_when_unprofitable and path_cost >= -1e-12:
                break
            potentials = [
                p + d if d < _INF else p for p, d in zip(potentials, dist)
            ]
            # Bottleneck along the path.
            bottleneck = float(amount - flow)
            v = sink
            while v != source:
                e = parent_arc[v]
                bottleneck = min(bottleneck, self._cap[e])
                v = self._head[e ^ 1]
            bottleneck = float(int(bottleneck))  # capacities are integral
            if bottleneck <= 0:
                raise SolverError("zero-bottleneck augmenting path")
            v = sink
            while v != source:
                e = parent_arc[v]
                self._cap[e] -= bottleneck
                self._cap[e ^ 1] += bottleneck
                v = self._head[e ^ 1]
            flow += int(bottleneck)
            total_cost += bottleneck * path_cost

        arc_flow = np.array(self._cap, dtype=np.float64)[
            1 : 2 * self._num_user_arcs : 2
        ]
        self._potentials = potentials
        self._last_amount = flow
        return FlowResult(amount=flow, cost=total_cost, arc_flow=arc_flow)

    def cold_solve(
        self,
        source: int,
        sink: int,
        amount: int,
        *,
        dag: bool = False,
        initial_potentials: list[float] | None = None,
    ) -> FlowResult:
        """Guaranteed from-scratch solve: rewind all flow, then :meth:`solve`.

        The reference path that :meth:`resume` is cross-checked against in
        tests — it never consults retained potentials or flow.
        """
        self.reset()
        return self.solve(
            source, sink, amount, dag=dag, initial_potentials=initial_potentials
        )

    # ------------------------------------------------------------ warm resume
    #
    # Late in dual ascent the prices barely move, so the previous optimal
    # flow usually stays optimal. ``export_state``/``resume`` exploit that:
    # restore the retained flow, then repair the node potentials by
    # worklist (SPFA-style) label-correcting relaxations seeded only from
    # the residual arcs the cost change actually violated. If the worklist
    # settles, the potentials certify there is no negative residual cycle,
    # i.e. the retained flow is still optimal — typically after touching a
    # handful of nodes. If it does not settle within a fixed operation
    # budget (large perturbation, or a negative cycle that would need
    # canceling) resume bails to a cold solve, so it is never
    # asymptotically worse than one.

    #: Residual-arc relaxation margin; coarser than Dijkstra's float-noise
    #: guard (1e-15) and finer than its stale-potential alarm (1e-7).
    _RESUME_EPS = 1e-10
    #: Relaxation budget for the settle worklist, as a multiple of the arc
    #: count; beyond it resume deterministically bails to a cold solve.
    _RESUME_OPS_FACTOR = 4

    def export_state(self) -> FlowState:
        """Snapshot the current flow and potentials for a later resume.

        Only meaningful after a successful :meth:`solve` (or
        :meth:`resume`) with no arcs added since.
        """
        if self._potentials is None or self._cap0 is None:
            raise SolverError("no solved flow to export; call solve() first")
        n = len(self._cap)
        return FlowState(
            caps=np.fromiter(self._cap, dtype=np.float64, count=n),
            potentials=np.array(self._potentials, dtype=np.float64),
            costs=np.fromiter(self._cost, dtype=np.float64, count=n),
            amount=int(self._last_amount),
        )

    def resume(
        self,
        source: int,
        sink: int,
        amount: int,
        state: FlowState,
        *,
        dag: bool = False,
        initial_potentials: list[float] | None = None,
    ) -> FlowResult:
        """Re-optimize after a cost change, starting from ``state``.

        Equivalent to :meth:`cold_solve` (same optimal cost; identical
        solution whenever the optimum is unique) but typically much
        cheaper: when the retained flow is still optimal the only work is
        scanning for violated residual arcs and settling the few affected
        potentials. Falls back to a cold solve deterministically when the
        settle worklist exceeds its operation budget. ``dag`` and
        ``initial_potentials`` are only used by that fallback.
        """
        if len(state.caps) != len(self._cap):
            raise ConfigurationError(
                f"state has {len(state.caps)} arc slots, graph has {len(self._cap)}"
            )
        if self._cap0 is None:
            # The graph may be a fresh template that never solved: its
            # current (empty-flow) capacities are the rewind snapshot.
            self._cap0 = list(self._cap)
        self._cap[:] = state.caps.tolist()
        potentials = state.potentials.tolist()
        # The retained potentials were settled against ``state.costs``, so
        # only arcs whose cost changed since can violate them — they are
        # the entire repair worklist.
        costs_now = np.fromiter(self._cost, dtype=np.float64, count=len(self._cost))
        changed = np.flatnonzero(costs_now != state.costs)

        self.last_resume_bailed = False
        if not self._settle_potentials(potentials, changed.tolist()):
            self.last_resume_bailed = True
            return self.cold_solve(
                source, sink, amount, dag=dag, initial_potentials=initial_potentials
            )

        # Potentials are valid for the retained flow; route any shortfall
        # (none in the steady state — the retained flow already carries
        # ``amount``) with the ordinary reduced-cost augmentations.
        flow = state.amount
        while flow < amount:
            dist, parent_arc = self._dijkstra(source, potentials)
            if dist[sink] == _INF:
                break
            potentials = [
                p + d if d < _INF else p for p, d in zip(potentials, dist)
            ]
            bottleneck = float(amount - flow)
            v = sink
            while v != source:
                e = parent_arc[v]
                bottleneck = min(bottleneck, self._cap[e])
                v = self._head[e ^ 1]
            bottleneck = float(int(bottleneck))
            if bottleneck <= 0:
                raise SolverError("zero-bottleneck augmenting path")
            v = sink
            while v != source:
                e = parent_arc[v]
                self._cap[e] -= bottleneck
                self._cap[e ^ 1] += bottleneck
                v = self._head[e ^ 1]
            flow += int(bottleneck)

        total_cost = 0.0
        arc_flow = np.empty(self._num_user_arcs, dtype=np.float64)
        for i in range(self._num_user_arcs):
            f = self._cap[2 * i + 1]
            arc_flow[i] = f
            if f:
                total_cost += f * self._cost[2 * i]
        self._potentials = potentials
        self._last_amount = flow
        return FlowResult(amount=flow, cost=total_cost, arc_flow=arc_flow)

    def _settle_potentials(
        self, potentials: list[float], changed_arcs: list[int]
    ) -> bool:
        """Worklist label-correcting until no residual arc is violated.

        Seeds the queue from the (cost-)changed arcs only — all other
        residual arcs already satisfied the potentials — then propagates
        from nodes whose potential actually dropped. Settling certifies
        valid potentials, and therefore that the current flow has no
        negative residual cycle, i.e. is optimal for its value. Returns
        ``False`` when the relaxation budget runs out (the caller must
        cold-solve; this also covers negative residual cycles, on which
        pure relaxation would never settle).
        """
        eps = self._RESUME_EPS
        cap, cost, head, adj = self._cap, self._cost, self._head, self._adj
        queue: deque[int] = deque()
        queued = [False] * self.num_nodes
        for e in changed_arcs:
            if cap[e] > 1e-12:
                u = head[e ^ 1]
                pu = potentials[u]
                if pu == _INF:
                    continue
                v = head[e]
                nv = pu + cost[e]
                if nv < potentials[v] - eps:
                    potentials[v] = nv
                    if not queued[v]:
                        queued[v] = True
                        queue.append(v)
        ops = 0
        budget = self._RESUME_OPS_FACTOR * len(head)
        while queue:
            u = queue.popleft()
            queued[u] = False
            pu = potentials[u]
            for e in adj[u]:
                ops += 1
                if cap[e] > 1e-12:
                    v = head[e]
                    nv = pu + cost[e]
                    if nv < potentials[v] - eps:
                        potentials[v] = nv
                        if not queued[v]:
                            queued[v] = True
                            queue.append(v)
            if ops > budget:
                return False
        return True

    def _dijkstra(
        self, source: int, potentials: list[float]
    ) -> tuple[list[float], list[int]]:
        # The tightest loop in the solver: every name it touches is bound
        # to a local, arcs are scanned as precomputed (id, head) pairs, and
        # the `max(reduced, 0.0)` clamp is branched inline. None of this
        # changes any comparison or float operation, so the pop order —
        # and with it the chosen paths — is unchanged.
        pairs = self._adj_pairs
        if pairs is None:
            head = self._head
            pairs = [[(e, head[e]) for e in arcs] for arcs in self._adj]
            self._adj_pairs = pairs
        dist = [_INF] * self.num_nodes
        parent_arc = [-1] * self.num_nodes
        dist[source] = 0.0
        heap: list[tuple[float, int]] = [(0.0, source)]
        heappop, heappush = heapq.heappop, heapq.heappush
        cap, cost = self._cap, self._cost
        inf = _INF
        while heap:
            d, u = heappop(heap)
            if d > dist[u] + 1e-15:
                continue
            pu = potentials[u]
            if pu == inf:
                continue
            for e, v in pairs[u]:
                if cap[e] <= 1e-12:
                    continue
                pv = potentials[v]
                if pv == inf:
                    continue
                reduced = cost[e] + pu - pv
                if reduced < 0.0:
                    if reduced < -1e-7:
                        raise SolverError(
                            f"negative reduced cost {reduced:.3e}; "
                            "potentials are stale"
                        )
                    nd = d
                else:
                    nd = d + reduced
                if nd < dist[v] - 1e-15:
                    dist[v] = nd
                    parent_arc[v] = e
                    heappush(heap, (nd, v))
        return dist, parent_arc

"""Total-unimodularity utilities (the machinery behind Theorem 1).

Theorem 1 of the paper shows the caching subproblem's constraint matrix is
totally unimodular (TU), so the LP relaxation of the 0-1 caching problem
has an integral optimum (Lemmas 1-2, Hoffman-Kruskal). This module provides

- :func:`is_totally_unimodular` — a direct determinant check over all
  square submatrices (exponential; intended for tests on small matrices),
- :func:`is_interval_matrix` — the consecutive-ones sufficient condition,
- :func:`ghouila_houri_check` — the Ghouila-Houri characterization via row
  2-colourings, practical up to ~20 rows.
"""

from __future__ import annotations

from itertools import combinations, product

import numpy as np

from repro.exceptions import ConfigurationError
from repro.types import FloatArray


def _validate_matrix(A: FloatArray) -> FloatArray:
    A = np.asarray(A, dtype=np.float64)
    if A.ndim != 2:
        raise ConfigurationError(f"expected a matrix, got shape {A.shape}")
    if not np.all(np.isin(A, (-1.0, 0.0, 1.0))):
        raise ConfigurationError("TU checks require entries in {-1, 0, +1}")
    return A


def is_totally_unimodular(A: FloatArray, *, max_order: int | None = None) -> bool:
    """Check total unimodularity by enumerating square submatrix determinants.

    Every square submatrix determinant must lie in ``{-1, 0, +1}``.
    Exponential in the matrix size — use only for small test matrices.
    ``max_order`` optionally caps the submatrix order checked.
    """
    A = _validate_matrix(A)
    m, n = A.shape
    top = min(m, n)
    if max_order is not None:
        top = min(top, max_order)
    for order in range(1, top + 1):
        for rows in combinations(range(m), order):
            sub_rows = A[list(rows), :]
            for cols in combinations(range(n), order):
                det = np.linalg.det(sub_rows[:, list(cols)])
                if abs(det - round(det)) > 1e-7 or round(det) not in (-1, 0, 1):
                    return False
    return True


def is_interval_matrix(A: FloatArray) -> bool:
    """Check the consecutive-ones property (each column's 1s are contiguous).

    Interval matrices are TU; the caching LP's per-slot capacity block has
    this shape.
    """
    A = np.asarray(A, dtype=np.float64)
    if A.ndim != 2:
        raise ConfigurationError(f"expected a matrix, got shape {A.shape}")
    if not np.all(np.isin(A, (0.0, 1.0))):
        return False
    for col in A.T:
        ones = np.flatnonzero(col)
        if ones.size and not np.array_equal(ones, np.arange(ones[0], ones[-1] + 1)):
            return False
    return True


def ghouila_houri_check(A: FloatArray) -> bool:
    """Ghouila-Houri characterization of TU.

    A matrix is TU iff every subset of rows can be partitioned into two
    sets whose signed sum (set1 - set2) has all entries in ``{-1, 0, +1}``.
    Exponential in the number of rows (2^m sign patterns per subset), so
    practical only for small test matrices.
    """
    A = _validate_matrix(A)
    m = A.shape[0]
    for size in range(1, m + 1):
        for rows in combinations(range(m), size):
            sub = A[list(rows), :]
            ok = False
            for signs in product((1.0, -1.0), repeat=size):
                combo = np.asarray(signs) @ sub
                if np.all(np.abs(combo) <= 1.0 + 1e-9):
                    ok = True
                    break
            if not ok:
                return False
    return True

"""Setuptools shim.

Kept alongside ``pyproject.toml`` so that ``pip install -e .`` works in
offline environments whose setuptools lacks the PEP 660 editable-wheel
path (no ``wheel`` package available). All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
